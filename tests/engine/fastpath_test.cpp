/**
 * @file
 * Equivalence tests for the stack-distance fast paths: the
 * single-pass curves must be bit-identical to direct replay — per
 * kernel, per capacity, for misses, writebacks (including the
 * end-of-trace flush) and ioWords — for fully associative LRU
 * (ReuseDistanceAnalyzer), set-associative LRU per set count
 * (SetAssocReuseAnalyzer), and Belady OPT at whole capacity sets
 * (simulateOptCurve); the engine's fast-path jobs must return
 * exactly what the forced direct-replay jobs return; and a repeated
 * fast-path job must come out of the CurveStore without re-emitting
 * its trace.
 */

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"
#include "engine/curve_store.hpp"
#include "engine/engine.hpp"
#include "kernels/registry.hpp"
#include "mem/lru_cache.hpp"
#include "mem/opt_cache.hpp"
#include "mem/set_assoc.hpp"
#include "trace/reuse.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace kb {
namespace {

/** Direct replay reference: trace through LruCache(cap) + flush. */
MemoryStats
replayLru(const std::vector<Access> &trace, std::uint64_t cap)
{
    LruCache lru(cap);
    for (const auto &a : trace)
        lru.access(a);
    lru.flush();
    return lru.stats();
}

/** Direct replay reference: SetAssocCache(sets, ways, LRU) + flush. */
MemoryStats
replaySetAssoc(const std::vector<Access> &trace, std::uint64_t sets,
               std::uint64_t ways)
{
    SetAssocCache cache(sets, ways, ReplacementPolicy::LRU);
    for (const auto &a : trace)
        cache.access(a);
    cache.flush();
    return cache.stats();
}

/** A small fixed-schedule kernel trace (m_lo keeps them fast). */
std::vector<Access>
kernelTrace(const std::string &name, std::uint64_t &schedule_m)
{
    const auto kernel = KernelRegistry::instance().shared(name);
    std::uint64_t m_lo = 0, m_hi = 0;
    kernel->defaultSweepRange(m_lo, m_hi);
    schedule_m = m_lo;
    const std::uint64_t n = kernel->regimeProblemSize(
        kernel->suggestProblemSize(schedule_m), schedule_m);
    VectorSink buffer;
    kernel->emitTrace(n, schedule_m, buffer);
    return buffer.take();
}

/** Candidate capacities bracketing the interesting regions. */
std::vector<std::uint64_t>
capacityGrid(std::uint64_t schedule_m, std::uint64_t footprint)
{
    std::set<std::uint64_t> caps = {1,
                                    2,
                                    3,
                                    7,
                                    std::max<std::uint64_t>(
                                        schedule_m / 2, 1),
                                    schedule_m,
                                    2 * schedule_m,
                                    std::max<std::uint64_t>(footprint, 1),
                                    footprint + 9};
    return {caps.begin(), caps.end()};
}

/**
 * The tentpole property, per registered kernel: one analyzer pass
 * over the kernel's fixed-schedule trace reproduces direct LRU replay
 * at every capacity, bit for bit.
 */
TEST(StackDistanceFastPath, CurveMatchesDirectLruForAllKernels)
{
    auto &registry = KernelRegistry::instance();
    for (const auto &name : registry.names()) {
        SCOPED_TRACE("kernel " + name);
        const auto kernel = registry.shared(name);

        std::uint64_t m_lo = 0, m_hi = 0;
        kernel->defaultSweepRange(m_lo, m_hi);
        const std::uint64_t schedule_m = m_lo; // small, fast traces
        const std::uint64_t n = kernel->regimeProblemSize(
            kernel->suggestProblemSize(schedule_m), schedule_m);

        VectorSink buffer;
        kernel->emitTrace(n, schedule_m, buffer);
        const auto &trace = buffer.trace();
        ASSERT_FALSE(trace.empty());

        ReuseDistanceAnalyzer analyzer;
        kernel->emitTrace(n, schedule_m, analyzer);
        const auto curve = analyzer.missCurve();
        EXPECT_EQ(curve.accesses(), trace.size());

        for (const auto cap :
             capacityGrid(schedule_m, curve.footprint())) {
            SCOPED_TRACE("capacity " + std::to_string(cap));
            const auto direct = replayLru(trace, cap);
            EXPECT_EQ(curve.missesAt(cap), direct.misses);
            EXPECT_EQ(curve.hitsAt(cap), direct.hits);
            EXPECT_EQ(curve.writebacksAt(cap), direct.writebacks);
            EXPECT_EQ(curve.ioWords(cap), direct.ioWords());
        }
    }
}

/**
 * Tentpole property (set-associative): one per-set Mattson pass per
 * set count reproduces direct SetAssocCache LRU replay at every
 * associativity up to the analyzer bound — per kernel, bit for bit,
 * writebacks and flush included.
 */
TEST(SetAssocFastPath, CurveMatchesDirectReplayForAllKernels)
{
    auto &registry = KernelRegistry::instance();
    for (const auto &name : registry.names()) {
        SCOPED_TRACE("kernel " + name);
        std::uint64_t schedule_m = 0;
        const auto trace = kernelTrace(name, schedule_m);
        ASSERT_FALSE(trace.empty());

        for (const std::uint64_t sets :
             {std::uint64_t{1}, std::uint64_t{3},
              std::max<std::uint64_t>(schedule_m / 8, 2)}) {
            SCOPED_TRACE("sets " + std::to_string(sets));
            SetAssocReuseAnalyzer analyzer(sets, 8);
            for (const auto &a : trace)
                analyzer.onAccess(a);
            const auto curve = analyzer.waysCurve();
            EXPECT_EQ(analyzer.accesses(), trace.size());

            for (const std::uint64_t ways : {1, 2, 7, 8}) {
                SCOPED_TRACE("ways " + std::to_string(ways));
                const auto direct =
                    replaySetAssoc(trace, sets, ways);
                EXPECT_EQ(curve.missesAt(ways), direct.misses);
                EXPECT_EQ(curve.hitsAt(ways), direct.hits);
                EXPECT_EQ(curve.writebacksAt(ways),
                          direct.writebacks);
                EXPECT_EQ(curve.ioWords(ways), direct.ioWords());
            }
        }
    }
}

/**
 * Tentpole property (OPT): one segmented Belady-stack walk
 * reproduces simulateOpt at every requested capacity — per kernel,
 * bit for bit, writebacks and flush included.
 */
TEST(OptFastPath, CurveMatchesSimulateOptForAllKernels)
{
    auto &registry = KernelRegistry::instance();
    for (const auto &name : registry.names()) {
        SCOPED_TRACE("kernel " + name);
        std::uint64_t schedule_m = 0;
        const auto trace = kernelTrace(name, schedule_m);
        ASSERT_FALSE(trace.empty());

        const auto caps = capacityGrid(schedule_m, schedule_m);
        const auto curve = simulateOptCurve(trace, caps);
        EXPECT_EQ(curve.accesses(), trace.size());
        for (const auto cap : caps) {
            SCOPED_TRACE("capacity " + std::to_string(cap));
            const auto direct = simulateOpt(trace, cap);
            EXPECT_EQ(curve.missesAt(cap), direct.stats.misses);
            EXPECT_EQ(curve.writebacksAt(cap),
                      direct.stats.writebacks);
            EXPECT_EQ(curve.ioWords(cap), direct.stats.ioWords());
        }
    }
}

/**
 * Randomized property: on random read/write mixes (fed partly through
 * onRun so the bulk cold path is exercised), the one-pass curve
 * equals direct replay at every probed capacity.
 */
class FastPathRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(FastPathRandom, RandomTracesMatchDirectReplay)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    Xoshiro256 rng(seed);
    const std::uint64_t addr_space = 64 + rng.below(512);

    std::vector<Access> trace;
    ReuseDistanceAnalyzer analyzer;
    for (int step = 0; step < 600; ++step) {
        if (rng.below(4) == 0) {
            // A contiguous run (sometimes entirely first-touch).
            const std::uint64_t base = rng.below(4 * addr_space);
            const std::uint64_t words = 1 + rng.below(64);
            const auto type = rng.below(3) == 0 ? AccessType::Write
                                                : AccessType::Read;
            for (std::uint64_t i = 0; i < words; ++i)
                trace.push_back(Access{base + i, type});
            analyzer.onRun(base, words, type);
        } else {
            const std::uint64_t a = rng.below(addr_space);
            const Access access =
                rng.below(3) == 0 ? writeOf(a) : readOf(a);
            trace.push_back(access);
            analyzer.onAccess(access);
        }
    }
    const auto curve = analyzer.missCurve();
    ASSERT_EQ(curve.accesses(), trace.size());

    for (std::uint64_t cap :
         {1u, 2u, 5u, 16u, 33u, 100u, 250u, 750u, 5000u}) {
        SCOPED_TRACE("capacity " + std::to_string(cap));
        const auto direct = replayLru(trace, cap);
        EXPECT_EQ(curve.missesAt(cap), direct.misses);
        EXPECT_EQ(curve.writebacksAt(cap), direct.writebacks);
        EXPECT_EQ(curve.ioWords(cap), direct.ioWords());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathRandom,
                         ::testing::Range(1, 9));

/** A random read/write trace with contiguous runs mixed in. */
std::vector<Access>
randomTrace(std::uint64_t seed, TraceSink &sink)
{
    Xoshiro256 rng(seed);
    const std::uint64_t addr_space = 64 + rng.below(512);
    std::vector<Access> trace;
    for (int step = 0; step < 600; ++step) {
        if (rng.below(4) == 0) {
            const std::uint64_t base = rng.below(4 * addr_space);
            const std::uint64_t words = 1 + rng.below(64);
            const auto type = rng.below(3) == 0 ? AccessType::Write
                                                : AccessType::Read;
            for (std::uint64_t i = 0; i < words; ++i)
                trace.push_back(Access{base + i, type});
            sink.onRun(base, words, type);
        } else {
            const std::uint64_t a = rng.below(addr_space);
            const Access access =
                rng.below(3) == 0 ? writeOf(a) : readOf(a);
            trace.push_back(access);
            sink.onAccess(access);
        }
    }
    return trace;
}

/** Randomized set-associative equivalence across set counts. */
TEST_P(FastPathRandom, SetAssocRandomTracesMatchDirectReplay)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    for (const std::uint64_t sets :
         {std::uint64_t{1}, std::uint64_t{5}, std::uint64_t{32}}) {
        SCOPED_TRACE("sets " + std::to_string(sets));
        SetAssocReuseAnalyzer analyzer(sets, 8);
        const auto trace = randomTrace(seed, analyzer);
        const auto curve = analyzer.waysCurve();
        ASSERT_EQ(analyzer.accesses(), trace.size());
        for (const std::uint64_t ways : {1, 3, 8}) {
            SCOPED_TRACE("ways " + std::to_string(ways));
            const auto direct = replaySetAssoc(trace, sets, ways);
            EXPECT_EQ(curve.missesAt(ways), direct.misses);
            EXPECT_EQ(curve.writebacksAt(ways), direct.writebacks);
            EXPECT_EQ(curve.ioWords(ways), direct.ioWords());
        }
    }
}

/** Randomized OPT equivalence at a mixed capacity set. */
TEST_P(FastPathRandom, OptRandomTracesMatchSimulateOpt)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    NullSink null;
    const auto trace = randomTrace(seed, null);
    const std::vector<std::uint64_t> caps = {1,  2,   5,   16,  33,
                                             100, 250, 750, 5000};
    const auto curve = simulateOptCurve(trace, caps);
    ASSERT_EQ(curve.accesses(), trace.size());
    for (const auto cap : caps) {
        SCOPED_TRACE("capacity " + std::to_string(cap));
        const auto direct = simulateOpt(trace, cap);
        EXPECT_EQ(curve.missesAt(cap), direct.stats.misses);
        EXPECT_EQ(curve.writebacksAt(cap), direct.stats.writebacks);
        EXPECT_EQ(curve.ioWords(cap), direct.stats.ioWords());
    }
}

/**
 * Regression: flush()-time writeback accounting. A trace that ends
 * with dirty residents must count them in both paths.
 */
TEST(StackDistanceFastPath, FlushWritebacksMatchDirectReplay)
{
    // Three words written and never evicted at large capacity: only
    // the flush writes them back.
    std::vector<Access> trace = {writeOf(1), writeOf(2), writeOf(3),
                                 readOf(1),  readOf(2),  readOf(3)};
    ReuseDistanceAnalyzer analyzer;
    for (const auto &a : trace)
        analyzer.onAccess(a);
    const auto curve = analyzer.missCurve();

    for (std::uint64_t cap : {1u, 2u, 3u, 4u, 100u}) {
        SCOPED_TRACE("capacity " + std::to_string(cap));
        const auto direct = replayLru(trace, cap);
        EXPECT_EQ(curve.writebacksAt(cap), direct.writebacks);
        EXPECT_EQ(curve.ioWords(cap), direct.ioWords());
    }
    // At capacity >= 3 nothing is evicted: exactly 3 flush writebacks.
    EXPECT_EQ(curve.writebacksAt(100), 3u);
}

/** Engine level: fast path vs forced direct replay, bit-identical. */
TEST(EngineFastPath, JobResultsMatchForcedDirectReplay)
{
    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 48;
    job.m_hi = 512;
    job.points = 5;
    job.models = {MemoryModelKind::Lru, MemoryModelKind::SetAssocLru,
                  MemoryModelKind::SetAssocFifo,
                  MemoryModelKind::RandomRepl, MemoryModelKind::Opt};
    job.schedule_m = 512;

    SweepJob direct_job = job;
    direct_job.force_replay = true;

    const auto fast = ExperimentEngine(1).runOne(job);
    const auto direct = ExperimentEngine(1).runOne(direct_job);
    const auto fast_mt = ExperimentEngine(4).runOne(job);

    ASSERT_EQ(fast.points.size(), direct.points.size());
    for (std::size_t p = 0; p < fast.points.size(); ++p) {
        SCOPED_TRACE("point " + std::to_string(p));
        EXPECT_EQ(fast.points[p].sample.m, direct.points[p].sample.m);
        EXPECT_EQ(fast.points[p].sample.ratio,
                  direct.points[p].sample.ratio);
        // The whole model row, every discipline, bit for bit.
        EXPECT_EQ(fast.points[p].model_io, direct.points[p].model_io);
        EXPECT_EQ(fast.points[p].model_io,
                  fast_mt.points[p].model_io);
    }
}

/** FFT couples its regime size to M; a pinned schedule_m must pin the
 *  replayed computation too, so fast and direct still agree. */
TEST(EngineFastPath, CoupledRegimeKernelMatchesDirectReplay)
{
    SweepJob job;
    job.kernel = "fft";
    job.m_lo = 16;
    job.m_hi = 128;
    job.points = 4;
    job.models = {MemoryModelKind::Lru};
    job.schedule_m = 64;

    SweepJob direct_job = job;
    direct_job.force_replay = true;

    const auto fast = ExperimentEngine(1).runOne(job);
    const auto direct = ExperimentEngine(1).runOne(direct_job);
    ASSERT_EQ(fast.points.size(), direct.points.size());
    for (std::size_t p = 0; p < fast.points.size(); ++p)
        EXPECT_EQ(fast.points[p].model_io, direct.points[p].model_io);
}

TEST(EngineFastPath, ModelsOnlySkipsSamplesButKeepsGrid)
{
    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 64;
    job.m_hi = 512;
    job.points = 4;
    job.models = {MemoryModelKind::Lru};
    job.schedule_m = 512;

    SweepJob quick = job;
    quick.models_only = true;

    const auto full = ExperimentEngine(1).runOne(job);
    const auto io_only = ExperimentEngine(1).runOne(quick);
    ASSERT_EQ(full.points.size(), io_only.points.size());
    for (std::size_t p = 0; p < full.points.size(); ++p) {
        EXPECT_EQ(io_only.points[p].sample.m,
                  full.points[p].sample.m);
        EXPECT_EQ(io_only.points[p].sample.ratio, 0.0);
        EXPECT_EQ(io_only.points[p].model_io,
                  full.points[p].model_io);
    }
}

TEST(EngineFastPath, MeasureCioCurveIsMonotoneAndLruBacked)
{
    const auto result = measureCioCurve("matmul", 512, 64, 512, 5);
    const auto lru = modelColumn(result, MemoryModelKind::Lru);
    ASSERT_GE(result.points.size(), 3u);
    for (std::size_t p = 1; p < result.points.size(); ++p) {
        // Inclusion property: more memory never costs more I/O.
        EXPECT_LE(result.points[p].model_io[lru],
                  result.points[p - 1].model_io[lru]);
    }
}

/**
 * The cross-job CurveStore: a repeated fast-path job must return the
 * cached curves without emitting its trace again, and the results
 * must be bit-identical to the cold run.
 */
TEST(EngineCurveStore, RepeatedJobReusesCurvesWithoutReemission)
{
    CurveStore::instance().clear();

    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 48;
    job.m_hi = 512;
    job.points = 5;
    job.models = {MemoryModelKind::Lru, MemoryModelKind::SetAssocLru,
                  MemoryModelKind::Opt};
    job.schedule_m = 256;
    job.models_only = true;

    const ExperimentEngine engine(1);
    const std::uint64_t emissions_before = engineEmissionCount();
    const auto cold = engine.runOne(job);
    const std::uint64_t cold_emissions =
        engineEmissionCount() - emissions_before;
    // Two emissions, not one: the analyzers share the first, and the
    // streaming OPT walk re-emits for its second pass instead of
    // holding an O(trace) buffer.
    EXPECT_EQ(cold_emissions, 2u)
        << "fast path should emit the job's trace exactly twice "
           "(shared analyzer pass + streaming OPT pass 2)";

    const auto warm = engine.runOne(job);
    EXPECT_EQ(engineEmissionCount() - emissions_before,
              cold_emissions)
        << "a repeated job must be served from the CurveStore "
           "without re-emitting";
    const auto stats = CurveStore::instance().stats();
    EXPECT_GT(stats.hits, 0u);

    ASSERT_EQ(cold.points.size(), warm.points.size());
    for (std::size_t p = 0; p < cold.points.size(); ++p) {
        EXPECT_EQ(cold.points[p].sample.m, warm.points[p].sample.m);
        EXPECT_EQ(cold.points[p].model_io, warm.points[p].model_io);
    }

    // Cached curves must also agree with a forced direct replay.
    SweepJob direct_job = job;
    direct_job.force_replay = true;
    const auto direct = engine.runOne(direct_job);
    for (std::size_t p = 0; p < warm.points.size(); ++p)
        EXPECT_EQ(warm.points[p].model_io, direct.points[p].model_io);

    CurveStore::instance().clear();
}

/** Alternating grids over the same trace must widen the cached OPT
 *  curve, not thrash it: the second round adds zero emissions. */
TEST(EngineCurveStore, AlternatingGridsMergeInsteadOfThrashing)
{
    CurveStore::instance().clear();

    SweepJob narrow;
    narrow.kernel = "matmul";
    narrow.m_lo = 48;
    narrow.m_hi = 256;
    narrow.points = 3;
    narrow.models = {MemoryModelKind::Opt};
    narrow.schedule_m = 256;
    narrow.models_only = true;

    SweepJob wide = narrow;
    wide.m_hi = 512;
    wide.points = 5;

    const ExperimentEngine engine(1);
    const auto narrow_cold = engine.runOne(narrow);
    const auto wide_cold = engine.runOne(wide);
    const std::uint64_t emissions = engineEmissionCount();

    const auto narrow_warm = engine.runOne(narrow);
    const auto wide_warm = engine.runOne(wide);
    EXPECT_EQ(engineEmissionCount(), emissions)
        << "both grids must be served from the merged cached curve";
    for (std::size_t p = 0; p < narrow_cold.points.size(); ++p)
        EXPECT_EQ(narrow_cold.points[p].model_io,
                  narrow_warm.points[p].model_io);
    for (std::size_t p = 0; p < wide_cold.points.size(); ++p)
        EXPECT_EQ(wide_cold.points[p].model_io,
                  wide_warm.points[p].model_io);

    CurveStore::instance().clear();
}

/** Queries beyond the analyzer's ways bound saturate at the lumped
 *  bucket instead of under-reporting misses. */
TEST(SetAssocFastPath, QueriesBeyondMaxWaysSaturate)
{
    SetAssocReuseAnalyzer analyzer(2, 4);
    // One set sees 6 distinct words round-robin: at 4 ways every
    // revisit is lumped; a naive curve would report 0 misses at
    // W > 4 even though a 5-way set still misses.
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t w = 0; w < 6; ++w)
            analyzer.onAccess(readOf(2 * w)); // all map to set 0
    const auto curve = analyzer.waysCurve();
    EXPECT_GT(curve.missesAt(4), 0u);
    EXPECT_GE(curve.missesAt(5), curve.missesAt(4))
        << "beyond the exact range the curve must not drop below "
           "the lumped bucket";
    EXPECT_EQ(curve.missesAt(5), curve.missesAt(4));
}

/** schedule_headroom: a per-point tile = M/2 job must match the
 *  hand-rolled replay it makes declarative (E12's shape). */
TEST(EngineScheduleHeadroom, MatchesHandRolledHalfTileReplay)
{
    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 64;
    job.m_hi = 512;
    job.points = 4;
    job.n_hint = 96;
    job.models = {MemoryModelKind::SetAssocLru};
    job.schedule_headroom = 2;
    job.models_only = true;

    const auto result = ExperimentEngine(1).runOne(job);
    const auto kernel = KernelRegistry::instance().shared("matmul");
    ASSERT_GE(result.points.size(), 3u);
    for (const auto &point : result.points) {
        const std::uint64_t m = point.sample.m;
        SCOPED_TRACE("m " + std::to_string(m));
        SetAssocCache cache(std::max<std::uint64_t>((m + 7) / 8, 1),
                            8, ReplacementPolicy::LRU);
        VectorSink buffer;
        kernel->emitTrace(96, m / 2, buffer);
        for (const auto &a : buffer.trace())
            cache.access(a);
        cache.flush();
        EXPECT_EQ(point.model_io[0], cache.stats().ioWords());
    }
}

} // namespace
} // namespace kb
