/**
 * @file
 * Tests for the store-backed replay path — the tentpole property:
 * replayed per-point results (non-inclusion models, tile-headroom
 * jobs, plain per-point-schedule jobs) are keyed into the CurveStore
 * like curves, so a warm store serves a fresh process's *replay*
 * sweep with ZERO trace emissions and bit-identical results; mixed
 * fixed-schedule jobs (curves + replayed columns) go fully warm too;
 * and force_replay bypasses the store entirely so A/B "direct"
 * numbers stay honest.
 */

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/curve_store.hpp"
#include "engine/engine.hpp"

namespace fs = std::filesystem;

namespace kb {
namespace {

/** RAII reset of the process-wide store around every test. */
class ReplayStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &store = CurveStore::instance();
        store.setDiskDirectory("");
        store.setTier1Capacity(64);
        store.clear();
    }

    void
    TearDown() override
    {
        auto &store = CurveStore::instance();
        if (!store.diskDirectory().empty())
            store.clearDisk();
        store.setDiskDirectory("");
        store.clear();
    }

    std::string
    scratchDir(const std::string &name)
    {
        const fs::path dir =
            fs::path(::testing::TempDir()) / ("kb_replay_" + name);
        fs::remove_all(dir);
        return dir.string();
    }

    static void
    expectSamePoints(const SweepResult &a, const SweepResult &b)
    {
        ASSERT_EQ(a.points.size(), b.points.size());
        for (std::size_t p = 0; p < a.points.size(); ++p) {
            EXPECT_EQ(a.points[p].sample.m, b.points[p].sample.m);
            EXPECT_EQ(a.points[p].model_io, b.points[p].model_io);
        }
    }
};

/** The acceptance property: a warm disk store serves a fresh
 *  process's replay-MODEL sweep (tile-headroom job: per-point
 *  schedules, no fast path possible) with zero trace emissions. */
TEST_F(ReplayStoreTest, WarmStoreServesHeadroomReplaySweepWithZeroEmissions)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("headroom"));

    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 64;
    job.m_hi = 512;
    job.points = 4;
    job.n_hint = 96;
    job.models = {MemoryModelKind::SetAssocLru,
                  MemoryModelKind::SetAssocFifo,
                  MemoryModelKind::RandomRepl};
    job.schedule_headroom = 2;
    job.models_only = true;

    const ExperimentEngine engine(1);
    const std::uint64_t before = engineEmissionCount();
    const auto cold = engine.runOne(job);
    const std::uint64_t cold_emissions =
        engineEmissionCount() - before;
    EXPECT_GT(cold_emissions, 0u)
        << "the cold run must really replay";
    EXPECT_GT(store.stats().replay_stores, 0u);

    // Fresh process: tier 1 dies, tier 2 persists.
    store.clear();
    const auto warm = engine.runOne(job);
    EXPECT_EQ(engineEmissionCount() - before, cold_emissions)
        << "a warm store must serve a fresh process's replay-model "
           "sweep with zero trace emissions";
    EXPECT_GT(store.stats().replay_hits, 0u);
    EXPECT_GT(store.stats().disk_hits, 0u);
    expectSamePoints(cold, warm);
}

/** Plain per-point-schedule jobs (schedule follows capacity — the
 *  historical default) ride the replay store too. */
TEST_F(ReplayStoreTest, PerPointScheduleJobGoesWarmInMemory)
{
    SweepJob job;
    job.kernel = "fft";
    job.m_lo = 16;
    job.m_hi = 128;
    job.points = 4;
    job.models = {MemoryModelKind::Lru, MemoryModelKind::Opt};

    const ExperimentEngine engine(1);
    const std::uint64_t before = engineEmissionCount();
    const auto cold = engine.runOne(job);
    const std::uint64_t cold_emissions =
        engineEmissionCount() - before;
    EXPECT_GT(cold_emissions, 0u);

    const auto warm = engine.runOne(job);
    EXPECT_EQ(engineEmissionCount() - before, cold_emissions)
        << "repeating a per-point replay job must add zero emissions";
    expectSamePoints(cold, warm);
}

/** A fixed-schedule job mixing fast-path curves with replayed
 *  non-inclusion columns goes FULLY warm: previously the replayed
 *  columns forced a re-emission even with every curve cached. */
TEST_F(ReplayStoreTest, MixedFixedScheduleJobGoesFullyWarmFromDisk)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("mixed"));

    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 48;
    job.m_hi = 512;
    job.points = 5;
    job.models = {MemoryModelKind::Lru, MemoryModelKind::SetAssocLru,
                  MemoryModelKind::SetAssocFifo,
                  MemoryModelKind::RandomRepl, MemoryModelKind::Opt};
    job.schedule_m = 256;
    job.models_only = true;

    const ExperimentEngine engine(1);
    const std::uint64_t before = engineEmissionCount();
    const auto cold = engine.runOne(job);
    // Shared analyzer/replay emission + streaming OPT's second pass.
    EXPECT_EQ(engineEmissionCount() - before, 2u)
        << "the fast path emits the fixed-schedule trace twice "
           "(shared pass + streaming OPT pass 2)";

    store.clear();
    const auto warm = engine.runOne(job);
    EXPECT_EQ(engineEmissionCount() - before, 2u)
        << "warm disk must serve curves AND replayed columns with "
           "zero further emissions";
    expectSamePoints(cold, warm);
}

/** force_replay must bypass the store both ways: its results match,
 *  but it really replays (the A/B bench's honesty contract). */
TEST_F(ReplayStoreTest, ForceReplayBypassesTheStore)
{
    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 64;
    job.m_hi = 256;
    job.points = 3;
    job.n_hint = 96;
    job.models = {MemoryModelKind::SetAssocFifo};
    job.schedule_headroom = 2;
    job.models_only = true;

    const ExperimentEngine engine(1);
    const auto cached = engine.runOne(job); // populates the store
    const auto replay_stores =
        CurveStore::instance().stats().replay_stores;
    EXPECT_GT(replay_stores, 0u);

    SweepJob direct = job;
    direct.force_replay = true;
    const std::uint64_t before = engineEmissionCount();
    const auto forced = engine.runOne(direct);
    EXPECT_GT(engineEmissionCount() - before, 0u)
        << "force_replay must re-emit even with a hot store";
    EXPECT_EQ(CurveStore::instance().stats().replay_stores,
              replay_stores)
        << "force_replay must not write the store either";
    expectSamePoints(cached, forced);
}

/** The store API itself: replayed points accumulate per (trace,
 *  model) entry, round-trip through disk, and keep families with
 *  different configs apart. */
TEST_F(ReplayStoreTest, ReplayEntriesAccumulateAndRoundTrip)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("api"));
    const TraceKey trace{"matmul", 96, 128};
    const ReplayModelKey fifo{2, 8};
    const ReplayModelKey random{3, 7};

    store.storeReplayIo(trace, fifo, 64, 111);
    store.storeReplayIo(trace, fifo, 128, 222);
    store.storeReplayIo(trace, random, 64, 333);

    // Fresh process: everything must come back off disk, per config.
    store.clear();
    auto io = store.findReplayIo(trace, fifo, 64);
    ASSERT_TRUE(io.has_value());
    EXPECT_EQ(*io, 111u);
    io = store.findReplayIo(trace, fifo, 128);
    ASSERT_TRUE(io.has_value());
    EXPECT_EQ(*io, 222u);
    io = store.findReplayIo(trace, random, 64);
    ASSERT_TRUE(io.has_value());
    EXPECT_EQ(*io, 333u);
    EXPECT_FALSE(store.findReplayIo(trace, random, 128).has_value());
    EXPECT_FALSE(store.findReplayIo(trace, fifo, 96).has_value());

    const auto stats = store.stats();
    EXPECT_EQ(stats.replay_hits, 3u);
    EXPECT_GT(stats.disk_hits, 0u);
}

} // namespace
} // namespace kb
