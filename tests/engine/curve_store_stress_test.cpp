/**
 * @file
 * Concurrency tests for the CurveStore's lock-free tier-2 I/O:
 *
 *  * the global mutex is demonstrably NOT held across file
 *    read/write syscalls (a hook blocks inside the I/O path until
 *    another thread completes a tier-1 lookup — impossible if the
 *    store held its lock across the syscall);
 *  * many threads hammering one store (mixed finds and stores, all
 *    four entry kinds, tiny tier 1 to force disk traffic) never
 *    crash, deadlock, or serve a wrong value;
 *  * concurrent writers of one OPT / replay entry — including
 *    SEPARATE store instances sharing a directory, the multi-process
 *    case — never lose a merge: the flock'd read-merge-write unions
 *    every contribution (the PR-4 last-rename-wins race, fixed).
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/curve_store.hpp"

namespace fs = std::filesystem;

namespace kb {
namespace {

std::string
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("kb_stress_" + name);
    fs::remove_all(dir);
    return dir.string();
}

TraceKey
key(std::uint64_t n)
{
    return TraceKey{"matmul", n, 512};
}

/** A tiny distinguishable curve: missesAt(0) answers @p tag + 1
 *  (the one cold miss plus a histogram of tag finite distances). */
std::shared_ptr<const MissCurve>
curveTagged(std::uint64_t tag)
{
    return std::make_shared<const MissCurve>(
        std::vector<std::uint64_t>{tag}, 1, tag + 1);
}

/**
 * One capacity point of a structurally consistent OPT curve: every
 * writer describes the SAME hypothetical trace (fixed access count),
 * and misses shrink as capacity grows, so any union of these points
 * passes OptCurve::decode's inclusion checks — exactly like real
 * per-trace curves, whose consistency is automatic.
 */
constexpr std::uint64_t kOptAccesses = 5000;

std::uint64_t
optMissesFor(std::uint64_t capacity)
{
    return kOptAccesses - 10 * capacity;
}

std::shared_ptr<const OptCurve>
optAt(std::uint64_t capacity)
{
    return std::make_shared<const OptCurve>(
        std::vector<std::uint64_t>{capacity},
        std::vector<std::uint64_t>{optMissesFor(capacity)},
        std::vector<std::uint64_t>{1}, kOptAccesses);
}

/**
 * The tentpole lock property: while one thread sits inside a tier-2
 * write syscall, another thread's tier-1 lookup (which needs the
 * global mutex) completes. If the store still held its global lock
 * across file I/O, the lookup would block until the hook's timeout
 * expired and the test would fail.
 */
TEST(CurveStoreConcurrency, GlobalMutexIsFreeDuringTierTwoIo)
{
    CurveStore store;
    store.setDiskDirectory(scratchDir("lockfree"));

    // Seed a tier-1-resident entry the probing thread can hit
    // without any disk I/O of its own. (Disk is detached so the seed
    // store itself takes no I/O path, then re-attached.)
    const std::string dir = store.diskDirectory();
    store.setDiskDirectory("");
    store.storeLru(key(1), curveTagged(1));
    store.setDiskDirectory(dir);

    std::mutex m;
    std::condition_variable cv;
    bool in_io = false, probed = false, hook_fired = false;

    store.setIoHookForTest([&] {
        std::unique_lock<std::mutex> lock(m);
        if (hook_fired)
            return; // only the first I/O needs to prove the property
        hook_fired = true;
        in_io = true;
        cv.notify_all();
        // Wait, mid-I/O, for the main thread's lookup to finish.
        cv.wait_for(lock, std::chrono::seconds(10),
                    [&] { return probed; });
        EXPECT_TRUE(probed)
            << "a tier-1 lookup could not complete while this thread "
               "was inside tier-2 I/O: the global mutex must still "
               "be held across the syscall";
    });

    std::thread writer(
        [&store] { store.storeLru(key(2), curveTagged(2)); });

    {
        std::unique_lock<std::mutex> lock(m);
        ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                                [&] { return in_io; }))
            << "tier-2 write never reached the I/O hook";
    }
    // The writer thread is parked inside the I/O path. This lookup
    // takes the global mutex; it must succeed immediately.
    EXPECT_NE(store.findLru(key(1)), nullptr);
    {
        std::lock_guard<std::mutex> lock(m);
        probed = true;
    }
    cv.notify_all();
    writer.join();
    store.setIoHookForTest(nullptr);
    EXPECT_TRUE(hook_fired);
    store.clearDisk();
}

/**
 * Many threads, one store, every entry kind, tier 1 squeezed so the
 * disk tier is constantly exercised. Every value read back must be
 * the deterministic function of its key.
 */
TEST(CurveStoreConcurrency, ConcurrentJobsHammerOneStoreCoherently)
{
    CurveStore store;
    store.setDiskDirectory(scratchDir("hammer"));
    store.setTier1Capacity(4); // force constant disk traffic

    constexpr int kThreads = 8;
    constexpr std::uint64_t kKeys = 12;
    constexpr int kRounds = 40;
    std::atomic<int> mismatches{0};

    const ReplayModelKey fifo{2, 8};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                const std::uint64_t k =
                    (static_cast<std::uint64_t>(t) * 31 + r) % kKeys;
                switch ((t + r) % 4) {
                  case 0:
                    store.storeLru(key(k), curveTagged(k));
                    break;
                  case 1: {
                    const auto got = store.findLru(key(k));
                    if (got && got->missesAt(0) != k + 1)
                        ++mismatches;
                    break;
                  }
                  case 2:
                    store.storeReplayIo(key(k), fifo, 64 + k,
                                        1000 + k);
                    break;
                  default: {
                    const auto got =
                        store.findReplayIo(key(k), fifo, 64 + k);
                    if (got && *got != 1000 + k)
                        ++mismatches;
                    break;
                  }
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(mismatches.load(), 0);

    // After the dust settles every key resolves with its own value.
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        store.storeLru(key(k), curveTagged(k));
        store.storeReplayIo(key(k), fifo, 64 + k, 1000 + k);
    }
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        const auto lru = store.findLru(key(k));
        ASSERT_NE(lru, nullptr) << "key " << k;
        EXPECT_EQ(lru->missesAt(0), k + 1);
        const auto io = store.findReplayIo(key(k), fifo, 64 + k);
        ASSERT_TRUE(io.has_value()) << "key " << k;
        EXPECT_EQ(*io, 1000 + k);
    }
    store.clearDisk();
}

/**
 * The fixed OPT writer race: concurrent read-merge-write of ONE disk
 * entry from several store instances (= several processes sharing a
 * cache directory) must union every contribution. Under PR-4's
 * last-rename-wins this reliably lost capacities; the flock guard
 * makes loss impossible, which a fresh store asserts by finding the
 * full union on disk.
 */
TEST(CurveStoreConcurrency, ConcurrentOptAndReplayMergesAreNeverLost)
{
    const std::string dir = scratchDir("merge");
    constexpr std::uint64_t kWriters = 6;
    const ReplayModelKey random_model{3, 7};

    {
        // One store instance per "process", each contributing one
        // distinct OPT capacity and one distinct replayed point to
        // the SAME entries, all concurrently.
        std::vector<std::unique_ptr<CurveStore>> stores;
        for (std::uint64_t w = 0; w < kWriters; ++w) {
            stores.push_back(std::make_unique<CurveStore>());
            stores.back()->setDiskDirectory(dir);
        }
        std::vector<std::thread> writers;
        for (std::uint64_t w = 0; w < kWriters; ++w) {
            writers.emplace_back([&, w] {
                stores[w]->storeOpt(key(9), optAt(100 + w));
                stores[w]->storeReplayIo(key(9), random_model,
                                         100 + w, 2000 + w);
            });
        }
        for (auto &th : writers)
            th.join();
    }

    // A brand-new store (fresh tier 1) must see the union of every
    // writer's contribution — no lost merges.
    CurveStore reader;
    reader.setDiskDirectory(dir);
    std::vector<std::uint64_t> all_caps;
    for (std::uint64_t w = 0; w < kWriters; ++w)
        all_caps.push_back(100 + w);
    const auto opt = reader.findOpt(key(9), all_caps);
    ASSERT_NE(opt, nullptr)
        << "a concurrent writer's OPT capacities were lost "
           "(read-merge-write race)";
    for (std::uint64_t w = 0; w < kWriters; ++w)
        EXPECT_EQ(opt->missesAt(100 + w), optMissesFor(100 + w));

    for (std::uint64_t w = 0; w < kWriters; ++w) {
        const auto io =
            reader.findReplayIo(key(9), random_model, 100 + w);
        ASSERT_TRUE(io.has_value())
            << "replayed point of writer " << w << " was lost";
        EXPECT_EQ(*io, 2000 + w);
    }
    reader.clearDisk();
}

} // namespace
} // namespace kb
