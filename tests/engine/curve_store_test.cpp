/**
 * @file
 * Tests for the two-tier CurveStore: tier-1 LRU eviction (hot
 * entries survive cold scans), the versioned on-disk tier (a fresh
 * "process" — tier 1 cleared — serves a fixed-schedule sweep with
 * zero trace emissions), and corrupt-store robustness (a bit-flipped,
 * truncated, or wrong-version entry is ignored and recomputed, never
 * crashes, never poisons results).
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/curve_store.hpp"
#include "engine/engine.hpp"
#include "util/binio.hpp"

namespace fs = std::filesystem;

namespace kb {
namespace {

/** RAII reset: every test leaves the process-wide store as it found
 *  it (tier 2 disabled, default tier-1 capacity, empty). */
class CurveStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &store = CurveStore::instance();
        store.setDiskDirectory("");
        store.setTier1Capacity(64);
        store.clear();
    }

    void
    TearDown() override
    {
        auto &store = CurveStore::instance();
        if (!store.diskDirectory().empty())
            store.clearDisk();
        store.setDiskDirectory("");
        store.setTier1Capacity(64);
        store.clear();
    }

    /** Per-test scratch directory for the disk tier. */
    std::string
    scratchDir(const std::string &name)
    {
        const fs::path dir =
            fs::path(::testing::TempDir()) / ("kb_store_" + name);
        fs::remove_all(dir);
        return dir.string();
    }

    static TraceKey
    key(std::uint64_t n)
    {
        return TraceKey{"matmul", n, 512};
    }

    /** A tiny distinguishable curve: missesAt(0) encodes @p tag. */
    static std::shared_ptr<const MissCurve>
    curveTagged(std::uint64_t tag)
    {
        return std::make_shared<const MissCurve>(
            std::vector<std::uint64_t>{tag}, 1, tag + 1);
    }
};

TEST_F(CurveStoreTest, Tier1EvictsLeastRecentlyUsedNotOldest)
{
    auto &store = CurveStore::instance();
    store.setTier1Capacity(4);

    // Insert the hot entry FIRST: under the old insertion-order FIFO
    // it would be the first victim; under LRU the touches below keep
    // it resident through the whole cold scan.
    store.storeLru(key(0), curveTagged(0));
    for (std::uint64_t i = 1; i <= 6; ++i) {
        ASSERT_NE(store.findLru(key(0)), nullptr)
            << "hot entry evicted after " << i - 1 << " cold inserts";
        store.storeLru(key(i), curveTagged(i));
    }

    const auto hot = store.findLru(key(0));
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(hot->missesAt(0), 1u); // tag 0: cold_ + suffix_[0]
    // The cold scan overflowed capacity: somebody was evicted, and it
    // was a cold entry, not the hot one.
    const auto stats = store.stats();
    EXPECT_GE(stats.tier1_evictions, 3u);
    EXPECT_EQ(store.findLru(key(1)), nullptr)
        << "the least recently used cold entry should have been "
           "evicted first";
}

TEST_F(CurveStoreTest, DiskTierRoundTripsAllThreeFamilies)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("roundtrip"));

    const auto lru = std::make_shared<const MissCurve>(
        std::vector<std::uint64_t>{5, 3, 0, 2}, 7, 30,
        std::vector<std::uint64_t>{2, 1}, 4);
    const auto sa = std::make_shared<const MissCurve>(
        std::vector<std::uint64_t>{9, 1}, 2, 20);
    const auto opt = std::make_shared<const OptCurve>(
        std::vector<std::uint64_t>{8, 64, 512},
        std::vector<std::uint64_t>{30, 20, 10},
        std::vector<std::uint64_t>{6, 4, 2}, 40);
    store.storeLru(key(1), lru);
    store.storeSetAssoc(key(1), 16, 8, sa);
    store.storeOpt(key(1), opt);

    // "New process": tier 1 gone, disk warm.
    store.clear();
    const auto lru2 = store.findLru(key(1));
    ASSERT_NE(lru2, nullptr);
    for (std::uint64_t cap : {0u, 1u, 2u, 3u, 4u, 100u}) {
        EXPECT_EQ(lru2->missesAt(cap), lru->missesAt(cap));
        EXPECT_EQ(lru2->writebacksAt(cap), lru->writebacksAt(cap));
    }
    EXPECT_EQ(lru2->accesses(), lru->accesses());
    EXPECT_EQ(lru2->footprint(), lru->footprint());

    const auto sa2 = store.findSetAssoc(key(1), 16, 8);
    ASSERT_NE(sa2, nullptr);
    EXPECT_EQ(sa2->missesAt(8), sa->missesAt(8));
    EXPECT_EQ(store.findSetAssoc(key(1), 16, 9), nullptr)
        << "a disk entry exact to 8 ways must not satisfy a 9-way "
           "lookup";

    const auto opt2 = store.findOpt(key(1), {8, 512});
    ASSERT_NE(opt2, nullptr);
    EXPECT_EQ(opt2->missesAt(64), opt->missesAt(64));
    EXPECT_EQ(opt2->writebacksAt(8), opt->writebacksAt(8));

    const auto stats = store.stats();
    EXPECT_EQ(stats.disk_hits, 3u);
    EXPECT_EQ(stats.disk_rejects, 0u);
}

TEST_F(CurveStoreTest, WarmDiskServesFreshProcessWithZeroEmissions)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("warm"));

    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 48;
    job.m_hi = 512;
    job.points = 5;
    job.models = {MemoryModelKind::Lru, MemoryModelKind::SetAssocLru,
                  MemoryModelKind::Opt};
    job.schedule_m = 256;
    job.models_only = true;

    const ExperimentEngine engine(1);
    const std::uint64_t before = engineEmissionCount();
    const auto cold = engine.runOne(job);
    // Cold = shared analyzer emission + streaming OPT's second pass.
    EXPECT_EQ(engineEmissionCount() - before, 2u);

    // Second *invocation*: tier 1 dies with the process, tier 2
    // persists. Zero further emissions, bit-identical results.
    store.clear();
    const auto warm = engine.runOne(job);
    EXPECT_EQ(engineEmissionCount() - before, 2u)
        << "a warm disk store must serve a fresh process without "
           "re-emitting the trace";
    EXPECT_GT(store.stats().disk_hits, 0u);

    ASSERT_EQ(cold.points.size(), warm.points.size());
    for (std::size_t p = 0; p < cold.points.size(); ++p) {
        EXPECT_EQ(cold.points[p].sample.m, warm.points[p].sample.m);
        EXPECT_EQ(cold.points[p].model_io, warm.points[p].model_io);
    }
}

/** Every .kbc entry file in the store's directory. */
std::vector<fs::path>
entryFiles(const std::string &dir)
{
    std::vector<fs::path> files;
    for (const auto &de : fs::directory_iterator(dir))
        if (de.is_regular_file() && de.path().extension() == ".kbc")
            files.push_back(de.path());
    return files;
}

TEST_F(CurveStoreTest, CorruptEntriesAreIgnoredAndRecomputed)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("corrupt"));

    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 48;
    job.m_hi = 512;
    job.points = 4;
    job.models = {MemoryModelKind::Lru, MemoryModelKind::Opt};
    job.schedule_m = 256;
    job.models_only = true;

    const ExperimentEngine engine(1);
    const auto reference = engine.runOne(job);
    const auto files = entryFiles(store.diskDirectory());
    ASSERT_FALSE(files.empty());

    // Bit-flip one payload byte in every stored entry.
    for (const auto &path : files) {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const auto size = static_cast<std::streamoff>(f.tellg());
        ASSERT_GT(size, 20);
        f.seekg(size / 2);
        const char byte = static_cast<char>(f.get() ^ 0x40);
        f.seekp(size / 2);
        f.write(&byte, 1);
    }

    store.clear(); // fresh process against the corrupted disk tier
    const std::uint64_t before = engineEmissionCount();
    const auto recomputed = engine.runOne(job);
    // Two fresh emissions: the analyzer pass plus streaming OPT's
    // second pass (the job carries an Opt column).
    EXPECT_EQ(engineEmissionCount() - before, 2u)
        << "corrupt entries must be recomputed from a fresh emission";
    EXPECT_GT(store.stats().disk_rejects, 0u);
    ASSERT_EQ(recomputed.points.size(), reference.points.size());
    for (std::size_t p = 0; p < reference.points.size(); ++p)
        EXPECT_EQ(recomputed.points[p].model_io,
                  reference.points[p].model_io)
            << "a checksum-failing entry must never poison results";

    // The recompute overwrote the corrupt files: a third process
    // reads them cleanly again.
    store.clear();
    const std::uint64_t after_rewrite = engineEmissionCount();
    const auto warm = engine.runOne(job);
    EXPECT_EQ(engineEmissionCount(), after_rewrite);
    for (std::size_t p = 0; p < reference.points.size(); ++p)
        EXPECT_EQ(warm.points[p].model_io,
                  reference.points[p].model_io);
}

TEST_F(CurveStoreTest, TruncatedAndWrongVersionEntriesAreRejected)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("stale"));

    store.storeLru(key(3), curveTagged(9));
    auto files = entryFiles(store.diskDirectory());
    ASSERT_EQ(files.size(), 1u);
    const fs::path path = files.front();

    // Truncate to half: rejected, lookup misses, nothing crashes.
    std::vector<char> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    store.clear();
    EXPECT_EQ(store.findLru(key(3)), nullptr);
    EXPECT_GE(store.stats().disk_rejects, 1u);

    // Wrong format version with a *valid* checksum: still rejected.
    // (Bump the version field, then re-seal the trailing hash, so the
    // version check itself is what rejects the entry.)
    bytes[4] = static_cast<char>(bytes[4] + 1);
    const std::span<const std::uint8_t> body(
        reinterpret_cast<const std::uint8_t *>(bytes.data()),
        bytes.size() - 8);
    ByteWriter seal;
    seal.u64(fnv1a64(body));
    std::copy(seal.bytes().begin(), seal.bytes().end(),
              reinterpret_cast<std::uint8_t *>(bytes.data()) +
                  bytes.size() - 8);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    store.clear();
    EXPECT_EQ(store.findLru(key(3)), nullptr);
    EXPECT_GE(store.stats().disk_rejects, 1u);
}

TEST_F(CurveStoreTest, OptEntriesWidenAcrossInvocations)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("optwiden"));

    // Invocation 1 contributes capacities {8, 64} to the shared dir.
    store.storeOpt(key(5), std::make_shared<const OptCurve>(
                               std::vector<std::uint64_t>{8, 64},
                               std::vector<std::uint64_t>{20, 10},
                               std::vector<std::uint64_t>{4, 2}, 30));
    // Invocation 2 (fresh tier 1) contributes {64, 512}: the store
    // must union with the disk entry, not overwrite it.
    store.clear();
    store.storeOpt(key(5), std::make_shared<const OptCurve>(
                               std::vector<std::uint64_t>{64, 512},
                               std::vector<std::uint64_t>{10, 5},
                               std::vector<std::uint64_t>{2, 1}, 30));
    // Invocation 3 queries capacities from both contributors.
    store.clear();
    const auto got = store.findOpt(key(5), {8, 64, 512});
    ASSERT_NE(got, nullptr)
        << "the disk entry must hold the union of both invocations";
    EXPECT_EQ(got->missesAt(8), 20u);
    EXPECT_EQ(got->missesAt(64), 10u);
    EXPECT_EQ(got->missesAt(512), 5u);
    EXPECT_EQ(got->writebacksAt(8), 4u);
    EXPECT_EQ(got->writebacksAt(512), 1u);
}

TEST_F(CurveStoreTest, DiskCapacityBoundEvictsOldestEntries)
{
    auto &store = CurveStore::instance();
    store.setDiskDirectory(scratchDir("bounded"));
    store.setDiskCapacityBytes(2048);

    // Each tagged curve is ~100 bytes on disk; far more than fits.
    for (std::uint64_t i = 0; i < 64; ++i)
        store.storeLru(key(100 + i), curveTagged(i));

    std::uint64_t total = 0;
    for (const auto &path : entryFiles(store.diskDirectory()))
        total += static_cast<std::uint64_t>(fs::file_size(path));
    EXPECT_LE(total, 2048u);
    EXPECT_GT(total, 0u) << "the bound must evict down to the cap, "
                            "not wipe the store";
    store.setDiskCapacityBytes(256ull << 20);
}

} // namespace
} // namespace kb
