/**
 * @file
 * Randomized differential tests for the rewritten analyzer cores.
 *
 * Three independent references pin the new implementations down:
 * the hierarchical MarkRank counter and the batched-run
 * ReuseDistanceAnalyzer diff against a self-contained copy of the
 * Fenwick-tree formulation they replaced; the multi-plane
 * MultiSetReuseAnalyzer diffs against both per-set-count analyzer
 * passes and direct SetAssocCache replay; and the streaming OPT path
 * diffs against the buffered simulateOptCurve — over every
 * registered kernel plus adversarial synthetic traces (wraparound
 * runs, all-cold streams, single-word hammers) and seeded random
 * mixes. The streaming stress also asserts the memory bound: peak
 * resident bytes stay put when the trace gets 8x longer.
 *
 * The fused-pipeline suite pins the chunked AnalysisPipeline and the
 * fused fully-assoc plane down the same way: one emission through the
 * chunk ring into a fused consumer must reproduce, bit for bit, the
 * separate per-analyzer passes it replaced — over every registered
 * kernel, the adversarial streams, and chunk sizes 1/7/4096 so ops
 * land on every possible chunk-boundary phase. A fully-assoc
 * scalar-vs-SIMD differential covers the run-block index and the
 * block-scan rankInc against the original per-word loops.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "mem/opt_cache.hpp"
#include "mem/set_assoc.hpp"
#include "trace/pipeline.hpp"
#include "trace/reuse.hpp"
#include "trace/sink.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace kb {
namespace {

/**
 * The retired Fenwick-tree reuse-distance implementation, kept
 * verbatim as the differential reference: O(log T) point updates and
 * prefix sums over a marks array, with the lazy rebuild the bulk
 * cold path used. Everything the analyzer API exposes is reproduced.
 */
class FenwickReuseReference
{
  public:
    void
    access(const Access &a)
    {
        const auto [state, inserted] = words_.tryEmplace(a.addr);
        if (inserted) {
            const std::uint64_t pos = time_;
            state->last_use = time_++;
            ++cold_;
            if (a.isWrite()) {
                ++cold_writebacks_;
                state->dirty_window = 0;
            } else {
                state->dirty_window = kColdWindow;
            }
            growMarks(static_cast<std::size_t>(pos) + 1);
            if (tree_stale_) {
                marks_[pos] = 1;
            } else {
                fenwickAdd(static_cast<std::size_t>(pos), +1);
            }
            return;
        }

        const std::uint64_t now = time_++;
        const std::uint64_t prev = state->last_use;
        growMarks(static_cast<std::size_t>(now) + 1);
        ensureTree();
        const std::uint64_t until_now =
            now == 0 ? 0 : fenwickSum(static_cast<std::size_t>(now - 1));
        const std::uint64_t until_prev =
            fenwickSum(static_cast<std::size_t>(prev));
        const std::uint64_t distance = until_now - until_prev;
        if (hist_.size() <= distance)
            hist_.resize(distance + 1, 0);
        ++hist_[distance];
        fenwickAdd(static_cast<std::size_t>(prev), -1);
        fenwickAdd(static_cast<std::size_t>(now), +1);
        state->last_use = now;
        state->dirty_window = std::max(state->dirty_window, distance);
        if (a.isWrite()) {
            if (state->dirty_window == kColdWindow) {
                ++cold_writebacks_;
            } else {
                if (wb_hist_.size() <= state->dirty_window)
                    wb_hist_.resize(state->dirty_window + 1, 0);
                ++wb_hist_[state->dirty_window];
            }
            state->dirty_window = 0;
        }
    }

    const std::vector<std::uint64_t> &histogram() const { return hist_; }
    const std::vector<std::uint64_t> &
    writeHistogram() const
    {
        return wb_hist_;
    }
    std::uint64_t coldMisses() const { return cold_; }
    std::uint64_t coldWritebacks() const { return cold_writebacks_; }
    std::uint64_t accesses() const { return time_; }
    std::uint64_t distinctWords() const { return words_.size(); }

  private:
    static constexpr std::uint64_t kColdWindow =
        std::numeric_limits<std::uint64_t>::max();

    struct WordState
    {
        std::uint64_t last_use = 0;
        std::uint64_t dirty_window = 0;
    };

    void
    growMarks(std::size_t n)
    {
        if (marks_.size() >= n)
            return;
        marks_.resize(std::max(n, marks_.size() * 2 + 16), 0);
        tree_stale_ = true;
    }

    void
    ensureTree()
    {
        if (!tree_stale_)
            return;
        tree_.assign(marks_.size(), 0);
        for (std::size_t i = 1; i <= marks_.size(); ++i) {
            tree_[i - 1] += marks_[i - 1];
            const std::size_t parent = i + (i & (~i + 1));
            if (parent <= marks_.size())
                tree_[parent - 1] += tree_[i - 1];
        }
        tree_stale_ = false;
    }

    void
    fenwickAdd(std::size_t pos, std::int64_t delta)
    {
        marks_[pos] = static_cast<std::uint8_t>(
            static_cast<std::int64_t>(marks_[pos]) + delta);
        for (std::size_t i = pos + 1; i <= tree_.size();
             i += i & (~i + 1))
            tree_[i - 1] += delta;
    }

    std::uint64_t
    fenwickSum(std::size_t pos) const
    {
        std::int64_t sum = 0;
        for (std::size_t i = std::min(pos + 1, tree_.size()); i > 0;
             i -= i & (~i + 1))
            sum += tree_[i - 1];
        return static_cast<std::uint64_t>(sum);
    }

    std::vector<std::uint8_t> marks_;
    std::vector<std::int64_t> tree_;
    bool tree_stale_ = true;
    FlatWordMap<WordState> words_;
    std::vector<std::uint64_t> hist_;
    std::vector<std::uint64_t> wb_hist_;
    std::uint64_t cold_ = 0;
    std::uint64_t cold_writebacks_ = 0;
    std::uint64_t time_ = 0;
};

/** One emitted run; word-at-a-time accesses are runs of one. */
struct Run
{
    std::uint64_t base = 0;
    std::uint64_t words = 1;
    AccessType type = AccessType::Read;
};

/** Named adversarial run streams the batched paths must not bend on. */
std::vector<std::pair<std::string, std::vector<Run>>>
adversarialStreams()
{
    std::vector<std::pair<std::string, std::vector<Run>>> streams;

    // Address-space wraparound: runs crossing 2^64 exercise the
    // base+i arithmetic (addresses stay distinct modulo 2^64).
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    streams.push_back({"wraparound_runs",
                       {{top - 5, 16, AccessType::Read},
                        {top - 5, 16, AccessType::Write},
                        {top - 2, 7, AccessType::Read},
                        {3, 4, AccessType::Read}}});

    // All-cold: disjoint first-touch runs, the bulk mark path end to
    // end with no warm access ever interleaving.
    {
        std::vector<Run> runs;
        for (std::uint64_t i = 0; i < 64; ++i)
            runs.push_back({i * 1000, 100,
                            i % 3 == 0 ? AccessType::Write
                                       : AccessType::Read});
        streams.push_back({"all_cold", std::move(runs)});
    }

    // Single-word hammer: distance 0 forever, alternating dirt.
    {
        std::vector<Run> runs;
        for (std::uint64_t i = 0; i < 500; ++i)
            runs.push_back({42, 1,
                            i % 2 == 0 ? AccessType::Write
                                       : AccessType::Read});
        streams.push_back({"single_word_hammer", std::move(runs)});
    }

    // Cold/warm interleave: every run half overlaps the previous one,
    // so phase 2 flips between streak flushes and warm queries.
    {
        std::vector<Run> runs;
        for (std::uint64_t i = 0; i < 200; ++i)
            runs.push_back({i * 8, 16,
                            i % 4 == 0 ? AccessType::Write
                                       : AccessType::Read});
        streams.push_back({"half_overlap_runs", std::move(runs)});
    }
    return streams;
}

/** Seeded random run mix (lengths, overlaps and types all vary). */
std::vector<Run>
randomStream(std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::vector<Run> runs;
    for (int i = 0; i < 300; ++i) {
        runs.push_back({rng.below(4000), 1 + rng.below(64),
                        rng.below(3) == 0 ? AccessType::Write
                                          : AccessType::Read});
    }
    return runs;
}

std::vector<Access>
expand(const std::vector<Run> &runs)
{
    std::vector<Access> trace;
    for (const auto &r : runs)
        for (std::uint64_t i = 0; i < r.words; ++i)
            trace.push_back(Access{r.base + i, r.type});
    return trace;
}

/** A small fixed-schedule kernel trace (m_lo keeps them fast). */
std::vector<Access>
kernelTrace(const std::string &name, std::uint64_t &schedule_m)
{
    const auto kernel = KernelRegistry::instance().shared(name);
    std::uint64_t m_lo = 0, m_hi = 0;
    kernel->defaultSweepRange(m_lo, m_hi);
    schedule_m = m_lo;
    const std::uint64_t n = kernel->regimeProblemSize(
        kernel->suggestProblemSize(schedule_m), schedule_m);
    VectorSink buffer;
    kernel->emitTrace(n, schedule_m, buffer);
    return buffer.take();
}

void
expectMatchesReference(const ReuseDistanceAnalyzer &analyzer,
                       const FenwickReuseReference &reference)
{
    EXPECT_EQ(analyzer.accesses(), reference.accesses());
    EXPECT_EQ(analyzer.coldMisses(), reference.coldMisses());
    EXPECT_EQ(analyzer.coldWritebacks(), reference.coldWritebacks());
    EXPECT_EQ(analyzer.distinctWords(), reference.distinctWords());
    EXPECT_EQ(analyzer.histogram(), reference.histogram());
    EXPECT_EQ(analyzer.writeHistogram(), reference.writeHistogram());
}

/** MarkRank against a naive bit vector, random set/clear/setRun. */
TEST(MarkRankDiff, MatchesNaiveBitVector)
{
    Xoshiro256 rng(2024);
    MarkRank rank;
    std::vector<std::uint8_t> naive;
    std::vector<std::uint64_t> set_positions;

    std::uint64_t frontier = 0;
    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t roll = rng.below(10);
        if (roll < 4 || set_positions.empty()) {
            // Grow with a cold streak of 1..200 positions.
            const std::uint64_t len = 1 + rng.below(200);
            rank.grow(frontier + len);
            naive.resize(frontier + len, 0);
            rank.setRun(frontier, len);
            for (std::uint64_t i = 0; i < len; ++i) {
                naive[frontier + i] = 1;
                set_positions.push_back(frontier + i);
            }
            frontier += len;
        } else if (roll < 7) {
            // Move one mark (clear + set at the frontier), the warm
            // access pattern.
            const std::size_t pick = static_cast<std::size_t>(
                rng.below(set_positions.size()));
            const std::uint64_t pos = set_positions[pick];
            rank.clear(pos);
            naive[pos] = 0;
            rank.grow(frontier + 1);
            naive.resize(frontier + 1, 0);
            rank.set(frontier);
            naive[frontier] = 1;
            set_positions[pick] = frontier;
            ++frontier;
        } else {
            // Rank query at a random position (past and present).
            const std::uint64_t p = rng.below(frontier);
            std::uint64_t expected = 0;
            for (std::uint64_t i = 0; i <= p; ++i)
                expected += naive[i];
            ASSERT_EQ(rank.rankInc(p), expected) << "position " << p;
        }
    }
    std::uint64_t total = 0;
    for (const auto bit : naive)
        total += bit;
    EXPECT_EQ(rank.total(), total);
}

TEST(HierarchicalReuseDiff, MatchesFenwickOnAllKernels)
{
    for (const auto &name : KernelRegistry::instance().names()) {
        SCOPED_TRACE("kernel " + name);
        std::uint64_t schedule_m = 0;
        const auto trace = kernelTrace(name, schedule_m);
        ASSERT_FALSE(trace.empty());

        ReuseDistanceAnalyzer analyzer;
        FenwickReuseReference reference;
        for (const auto &a : trace) {
            analyzer.onAccess(a);
            reference.access(a);
        }
        expectMatchesReference(analyzer, reference);
    }
}

TEST(HierarchicalReuseDiff, MatchesFenwickOnAdversarialAndRandomRuns)
{
    auto streams = adversarialStreams();
    for (std::uint64_t seed = 1; seed <= 12; ++seed)
        streams.push_back(
            {"random_" + std::to_string(seed), randomStream(seed)});

    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        // Via the batched run path AND via word-at-a-time accesses —
        // both must match the reference (and hence each other).
        ReuseDistanceAnalyzer via_runs, via_words;
        FenwickReuseReference reference;
        for (const auto &r : runs) {
            via_runs.onRun(r.base, r.words, r.type);
            for (std::uint64_t i = 0; i < r.words; ++i) {
                via_words.onAccess(Access{r.base + i, r.type});
                reference.access(Access{r.base + i, r.type});
            }
        }
        expectMatchesReference(via_runs, reference);
        expectMatchesReference(via_words, reference);
    }
}

/** Every plane of one multi-set pass must equal the per-set-count
 *  analyzer pass it fused, and both must equal direct replay. */
void
expectMultiSetMatches(const std::vector<Access> &trace,
                      const std::vector<std::uint64_t> &set_counts,
                      std::uint64_t max_ways)
{
    MultiSetReuseAnalyzer multi(set_counts, max_ways);
    for (const auto &a : trace)
        multi.onAccess(a);

    for (std::size_t p = 0; p < set_counts.size(); ++p) {
        SCOPED_TRACE("sets " + std::to_string(set_counts[p]));
        SetAssocReuseAnalyzer single(set_counts[p], max_ways);
        for (const auto &a : trace)
            single.onAccess(a);

        const auto multi_curve = multi.waysCurve(p);
        const auto single_curve = single.waysCurve();
        for (std::uint64_t w = 1; w <= max_ways + 3; ++w) {
            EXPECT_EQ(multi_curve.missesAt(w), single_curve.missesAt(w))
                << "ways " << w;
            EXPECT_EQ(multi_curve.writebacksAt(w),
                      single_curve.writebacksAt(w))
                << "ways " << w;
        }
        // Ground truth within the exact range: direct replay.
        for (std::uint64_t w = 1; w <= max_ways; ++w) {
            SetAssocCache cache(set_counts[p], w,
                                ReplacementPolicy::LRU);
            for (const auto &a : trace)
                cache.access(a);
            cache.flush();
            EXPECT_EQ(multi_curve.missesAt(w), cache.stats().misses)
                << "ways " << w;
            EXPECT_EQ(multi_curve.writebacksAt(w),
                      cache.stats().writebacks)
                << "ways " << w;
        }
    }
}

TEST(MultiSetDiff, MatchesPerSetPassesAndReplayOnKernels)
{
    for (const auto &name : KernelRegistry::instance().names()) {
        SCOPED_TRACE("kernel " + name);
        std::uint64_t schedule_m = 0;
        const auto trace = kernelTrace(name, schedule_m);
        expectMultiSetMatches(trace, {1, 3, 8, 32}, 4);
    }
}

TEST(MultiSetDiff, MatchesPerSetPassesOnAdversarialAndRandomRuns)
{
    auto streams = adversarialStreams();
    for (std::uint64_t seed = 21; seed <= 26; ++seed)
        streams.push_back(
            {"random_" + std::to_string(seed), randomStream(seed)});
    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        expectMultiSetMatches(expand(runs), {1, 2, 7, 16}, 4);
    }
}

/** SIMD row scans against the scalar oracle: identical curves. Runs
 *  feed the bulk onRun path so the compressed ordered rows engage. */
void
expectSimdMatchesScalar(const std::vector<Run> &runs,
                        const std::vector<std::uint64_t> &set_counts,
                        std::uint64_t max_ways)
{
    MultiSetReuseAnalyzer simd(set_counts, max_ways,
                               AnalyzerPath::Simd);
    MultiSetReuseAnalyzer scalar(set_counts, max_ways,
                                 AnalyzerPath::Scalar);
    for (const auto &r : runs) {
        simd.onRun(r.base, r.words, r.type);
        scalar.onRun(r.base, r.words, r.type);
    }
    for (std::size_t p = 0; p < set_counts.size(); ++p) {
        SCOPED_TRACE("sets " + std::to_string(set_counts[p]));
        const auto s = simd.waysCurve(p);
        const auto o = scalar.waysCurve(p);
        for (std::uint64_t w = 1; w <= max_ways + 3; ++w) {
            EXPECT_EQ(s.missesAt(w), o.missesAt(w)) << "ways " << w;
            EXPECT_EQ(s.writebacksAt(w), o.writebacksAt(w))
                << "ways " << w;
        }
    }
}

TEST(MultiSetSimdDiff, MatchesScalarOnAllKernels)
{
    // Emissions feed both analyzers directly as sinks, so the
    // kernels' run-aware onRun calls hit the bulk compressed path
    // exactly as in the production sweep.
    for (const auto &name : KernelRegistry::instance().names()) {
        SCOPED_TRACE("kernel " + name);
        const auto kernel = KernelRegistry::instance().shared(name);
        std::uint64_t m_lo = 0, m_hi = 0;
        kernel->defaultSweepRange(m_lo, m_hi);
        const std::uint64_t n = kernel->regimeProblemSize(
            kernel->suggestProblemSize(m_lo), m_lo);
        const std::vector<std::uint64_t> set_counts{1, 3, 8, 32};
        MultiSetReuseAnalyzer simd(set_counts, 8,
                                   AnalyzerPath::Simd);
        MultiSetReuseAnalyzer scalar(set_counts, 8,
                                     AnalyzerPath::Scalar);
        kernel->emitTrace(n, m_lo, simd);
        kernel->emitTrace(n, m_lo, scalar);
        for (std::size_t p = 0; p < set_counts.size(); ++p) {
            SCOPED_TRACE("sets " + std::to_string(set_counts[p]));
            const auto s = simd.waysCurve(p);
            const auto o = scalar.waysCurve(p);
            for (std::uint64_t w = 1; w <= 11; ++w) {
                EXPECT_EQ(s.missesAt(w), o.missesAt(w))
                    << "ways " << w;
                EXPECT_EQ(s.writebacksAt(w), o.writebacksAt(w))
                    << "ways " << w;
            }
        }
    }
}

TEST(MultiSetSimdDiff, MatchesScalarOnAdversarialShapes)
{
    auto streams = adversarialStreams();
    for (std::uint64_t seed = 41; seed <= 46; ++seed)
        streams.push_back(
            {"random_" + std::to_string(seed), randomStream(seed)});
    // Mid-trace escape from the u32 compressed-row address range:
    // warm small addresses first, then a run past 2^32 forces the
    // one-time demotion to stamp rows, then more small-address reuse
    // checks the demoted state carried every stamp and window over.
    {
        // `kb::Run` qualified: inside a TEST body the unqualified
        // name collides with testing::Test::Run.
        std::vector<kb::Run> runs;
        for (std::uint64_t i = 0; i < 40; ++i)
            runs.push_back({i * 16, 24,
                            i % 3 == 0 ? AccessType::Write
                                       : AccessType::Read});
        runs.push_back({(1ull << 32) - 20, 64, AccessType::Write});
        for (std::uint64_t i = 0; i < 40; ++i)
            runs.push_back({i * 16, 24,
                            i % 5 == 0 ? AccessType::Write
                                       : AccessType::Read});
        streams.push_back({"u32_range_demotion", std::move(runs)});
    }

    // Associativities off the vector width (1..3, 5, 7), a set count
    // of 1 (every access in one row, maximum victim-tie pressure),
    // and the full stride-8 shape.
    const std::vector<std::uint64_t> ways_grid{1, 2, 3, 5, 7, 8};
    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        for (const auto ways : ways_grid) {
            SCOPED_TRACE("max_ways " + std::to_string(ways));
            expectSimdMatchesScalar(runs, {1, 2, 7, 16}, ways);
        }
    }
}

void
expectOptStreamingMatchesBuffered(const std::vector<Access> &trace,
                                  std::vector<std::uint64_t> caps,
                                  OptStreamOptions options,
                                  OptStreamStats *stats = nullptr)
{
    const auto buffered = simulateOptCurve(trace, caps);
    const auto streamed = simulateOptCurveStreaming(
        [&](TraceSink &sink) {
            for (const auto &a : trace)
                sink.onAccess(a);
        },
        caps, options, stats);
    ASSERT_EQ(streamed.capacities(), buffered.capacities());
    EXPECT_EQ(streamed.accesses(), buffered.accesses());
    for (const auto cap : buffered.capacities()) {
        EXPECT_EQ(streamed.missesAt(cap), buffered.missesAt(cap))
            << "capacity " << cap;
        EXPECT_EQ(streamed.writebacksAt(cap),
                  buffered.writebacksAt(cap))
            << "capacity " << cap;
    }
}

TEST(StreamingOptDiff, MatchesBufferedOnAllKernels)
{
    // Tiny chunks force many boundary crossings; a tiny spill budget
    // forces the disk path on every kernel-sized trace.
    OptStreamOptions options;
    options.chunk_positions = 1024;
    options.spill_threshold_bytes = 1 << 14;

    for (const auto &name : KernelRegistry::instance().names()) {
        SCOPED_TRACE("kernel " + name);
        std::uint64_t schedule_m = 0;
        const auto trace = kernelTrace(name, schedule_m);
        expectOptStreamingMatchesBuffered(
            trace,
            {1, 3, schedule_m / 2 + 1, schedule_m, 4 * schedule_m},
            options);
    }
}

TEST(StreamingOptDiff, MatchesBufferedOnAdversarialAndRandomRuns)
{
    OptStreamOptions options;
    options.chunk_positions = 256;
    options.spill_threshold_bytes = 1 << 12;

    auto streams = adversarialStreams();
    for (std::uint64_t seed = 31; seed <= 36; ++seed)
        streams.push_back(
            {"random_" + std::to_string(seed), randomStream(seed)});
    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        expectOptStreamingMatchesBuffered(expand(runs),
                                          {1, 2, 5, 16, 300}, options);
    }
}

/** The acceptance bound: peak resident analyzer memory must not grow
 *  with trace length — 8x the trace, same high-water mark. */
TEST(StreamingOptDiff, PeakResidentMemoryIndependentOfTraceLength)
{
    OptStreamOptions options;
    options.chunk_positions = 256;
    options.spill_threshold_bytes = 1 << 12;

    // Cyclic sweep over a fixed footprint: every lap past the first
    // is all warm accesses, so records accumulate at full rate.
    const auto cyclicTrace = [](std::uint64_t laps) {
        std::vector<Access> trace;
        for (std::uint64_t lap = 0; lap < laps; ++lap)
            for (std::uint64_t a = 0; a < 600; ++a)
                trace.push_back(a % 7 == 0 ? writeOf(a) : readOf(a));
        return trace;
    };

    OptStreamStats short_stats, long_stats;
    expectOptStreamingMatchesBuffered(cyclicTrace(8), {4, 64, 512},
                                      options, &short_stats);
    expectOptStreamingMatchesBuffered(cyclicTrace(64), {4, 64, 512},
                                      options, &long_stats);

    EXPECT_EQ(long_stats.positions, 8 * short_stats.positions);
    EXPECT_GT(long_stats.spilled_bytes, short_stats.spilled_bytes);
    // The bound itself: pending records never pass the spill budget
    // (+ one record) and the resident total adds only the
    // materialized chunk buffers — two with the default chunk
    // prefetch (walk buffer + standby), for the 8x trace just as for
    // the 1x.
    const std::uint64_t record = 12;
    const std::uint64_t bound = options.spill_threshold_bytes + record +
                                2 * options.chunk_positions * 8;
    EXPECT_GT(short_stats.chunks_prefetched, 0u);
    EXPECT_LE(short_stats.peak_resident_bytes, bound);
    EXPECT_LE(long_stats.peak_resident_bytes, bound);
    EXPECT_EQ(long_stats.peak_resident_bytes,
              short_stats.peak_resident_bytes)
        << "peak resident bytes must not grow with trace length";

    // Prefetch off: same curve, and the resident bound tightens back
    // to a single chunk buffer.
    options.prefetch = false;
    OptStreamStats sync_stats;
    expectOptStreamingMatchesBuffered(cyclicTrace(64), {4, 64, 512},
                                      options, &sync_stats);
    EXPECT_EQ(sync_stats.chunks_prefetched, 0u);
    EXPECT_LE(sync_stats.peak_resident_bytes,
              options.spill_threshold_bytes + record +
                  options.chunk_positions * 8);
}

void
expectSameReuse(const ReuseDistanceAnalyzer &a,
                const ReuseDistanceAnalyzer &b)
{
    EXPECT_EQ(a.accesses(), b.accesses());
    EXPECT_EQ(a.coldMisses(), b.coldMisses());
    EXPECT_EQ(a.coldWritebacks(), b.coldWritebacks());
    EXPECT_EQ(a.distinctWords(), b.distinctWords());
    EXPECT_EQ(a.histogram(), b.histogram());
    EXPECT_EQ(a.writeHistogram(), b.writeHistogram());
}

/**
 * The fused-pipeline contract: one emission rendered into chunk
 * buffers and fanned out to a fused consumer (multi-set planes + the
 * fully-assoc shared-clock plane) must be bit-identical to the
 * separate passes it replaced — a standalone ReuseDistanceAnalyzer
 * and a standalone MultiSetReuseAnalyzer each fed directly. Single
 * words go through onAccess and longer runs through onRun so both
 * pipeline op kinds cross every chunk-boundary phase.
 */
void
expectFusedMatchesSeparate(const std::vector<Run> &runs,
                           const std::vector<std::uint64_t> &set_counts,
                           std::uint64_t max_ways, AnalyzerPath path,
                           std::uint64_t chunk_ops)
{
    ReuseDistanceAnalyzer fully(path);
    MultiSetReuseAnalyzer multi(set_counts, max_ways, path);
    std::uint64_t total_words = 0;
    for (const auto &r : runs) {
        fully.onRun(r.base, r.words, r.type);
        multi.onRun(r.base, r.words, r.type);
        total_words += r.words;
    }

    MultiSetReuseAnalyzer fused(set_counts, max_ways, path, true);
    AnalysisPipeline pipeline(chunk_ops);
    pipeline.attach(fused);
    for (const auto &r : runs) {
        if (r.words == 1)
            pipeline.onAccess(Access{r.base, r.type});
        else
            pipeline.onRun(r.base, r.words, r.type);
    }
    pipeline.flush();
    ASSERT_EQ(pipeline.wordsDelivered(), total_words);
    ASSERT_TRUE(fused.hasFullyAssoc());

    expectSameReuse(fused.fullyAssoc(), fully);
    const auto fused_lru = fused.fullyAssocCurve();
    const auto direct_lru = fully.missCurve();
    for (const std::uint64_t m : {1u, 2u, 7u, 64u, 1000u}) {
        EXPECT_EQ(fused_lru.missesAt(m), direct_lru.missesAt(m))
            << "capacity " << m;
        EXPECT_EQ(fused_lru.writebacksAt(m), direct_lru.writebacksAt(m))
            << "capacity " << m;
    }
    for (std::size_t p = 0; p < set_counts.size(); ++p) {
        SCOPED_TRACE("sets " + std::to_string(set_counts[p]));
        const auto f = fused.waysCurve(p);
        const auto s = multi.waysCurve(p);
        for (std::uint64_t w = 1; w <= max_ways + 3; ++w) {
            EXPECT_EQ(f.missesAt(w), s.missesAt(w)) << "ways " << w;
            EXPECT_EQ(f.writebacksAt(w), s.writebacksAt(w))
                << "ways " << w;
        }
    }
}

TEST(FusedPipelineDiff, MatchesSeparatePassesOnAllKernels)
{
    // Real emissions, production shape: the kernel emits once into
    // the pipeline exactly as the engine fast path drives it, and the
    // references each get their own direct emission.
    for (const auto &name : KernelRegistry::instance().names()) {
        SCOPED_TRACE("kernel " + name);
        const auto kernel = KernelRegistry::instance().shared(name);
        std::uint64_t m_lo = 0, m_hi = 0;
        kernel->defaultSweepRange(m_lo, m_hi);
        const std::uint64_t n = kernel->regimeProblemSize(
            kernel->suggestProblemSize(m_lo), m_lo);
        const std::vector<std::uint64_t> set_counts{1, 3, 8, 32};

        for (const auto path :
             {AnalyzerPath::Scalar, AnalyzerPath::Simd}) {
            SCOPED_TRACE(std::string("path ") +
                         analyzerPathName(path));
            ReuseDistanceAnalyzer fully(path);
            MultiSetReuseAnalyzer multi(set_counts, 8, path);
            kernel->emitTrace(n, m_lo, fully);
            kernel->emitTrace(n, m_lo, multi);

            MultiSetReuseAnalyzer fused(set_counts, 8, path, true);
            AnalysisPipeline pipeline;
            pipeline.attach(fused);
            kernel->emitTrace(n, m_lo, pipeline);
            pipeline.flush();

            ASSERT_EQ(pipeline.wordsDelivered(), fully.accesses());
            EXPECT_GT(pipeline.chunksDelivered(), 0u);
            expectSameReuse(fused.fullyAssoc(), fully);
            for (std::size_t p = 0; p < set_counts.size(); ++p) {
                SCOPED_TRACE("sets " +
                             std::to_string(set_counts[p]));
                const auto f = fused.waysCurve(p);
                const auto s = multi.waysCurve(p);
                for (std::uint64_t w = 1; w <= 11; ++w) {
                    EXPECT_EQ(f.missesAt(w), s.missesAt(w))
                        << "ways " << w;
                    EXPECT_EQ(f.writebacksAt(w), s.writebacksAt(w))
                        << "ways " << w;
                }
            }
        }
    }
}

TEST(FusedPipelineDiff, MatchesSeparatePassesOnAdversarialAndRandomRuns)
{
    auto streams = adversarialStreams();
    for (std::uint64_t seed = 51; seed <= 56; ++seed)
        streams.push_back(
            {"random_" + std::to_string(seed), randomStream(seed)});
    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        for (const auto path :
             {AnalyzerPath::Scalar, AnalyzerPath::Simd}) {
            SCOPED_TRACE(std::string("path ") +
                         analyzerPathName(path));
            expectFusedMatchesSeparate(
                runs, {1, 2, 7, 16}, 8, path,
                AnalysisPipeline::kDefaultChunkOps);
        }
    }
}

TEST(FusedPipelineDiff, ChunkBoundaryStress)
{
    // Chunk size 1 delivers after every op (maximum boundary
    // crossings), 7 lands boundaries on every op-index phase of the
    // run/word mixes, 4096 is the production default. All must be
    // invisible: the consumer sees the identical op sequence.
    auto streams = adversarialStreams();
    streams.push_back({"random_61", randomStream(61)});
    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        for (const std::uint64_t chunk_ops : {1u, 7u, 4096u}) {
            SCOPED_TRACE("chunk_ops " + std::to_string(chunk_ops));
            for (const auto path :
                 {AnalyzerPath::Scalar, AnalyzerPath::Simd}) {
                SCOPED_TRACE(std::string("path ") +
                             analyzerPathName(path));
                expectFusedMatchesSeparate(runs, {1, 4, 16}, 4, path,
                                           chunk_ops);
            }
        }
    }
}

/** The run-block index and block-scan rankInc against the scalar
 *  per-word loops: identical histograms on streams built to hit the
 *  index (exact repeats, shorter-prefix probes, longer-run misses,
 *  overwrites that extend a registered block). */
TEST(FullyAssocSimdDiff, RunBlockIndexMatchesScalar)
{
    auto streams = adversarialStreams();
    for (std::uint64_t seed = 71; seed <= 76; ++seed)
        streams.push_back(
            {"random_" + std::to_string(seed), randomStream(seed)});
    {
        // Block-index workout. `kb::Run` qualified: inside a TEST
        // body the unqualified name collides with testing::Test::Run.
        std::vector<kb::Run> runs;
        for (int rep = 0; rep < 4; ++rep) {
            runs.push_back({0, 64, AccessType::Read});   // register/hit
            runs.push_back({0, 32, AccessType::Write});  // prefix hit
            runs.push_back({0, 100, AccessType::Read});  // miss: longer
            runs.push_back({0, 100, AccessType::Read});  // now a hit
            runs.push_back({500, 1, AccessType::Read});  // too short
            runs.push_back({32, 32, AccessType::Read});  // offset base
        }
        streams.push_back({"run_block_workout", std::move(runs)});
    }

    for (const auto &[label, runs] : streams) {
        SCOPED_TRACE(label);
        ReuseDistanceAnalyzer simd(AnalyzerPath::Simd);
        ReuseDistanceAnalyzer scalar(AnalyzerPath::Scalar);
        for (const auto &r : runs) {
            simd.onRun(r.base, r.words, r.type);
            scalar.onRun(r.base, r.words, r.type);
        }
        expectSameReuse(simd, scalar);
        const auto s = simd.missCurve();
        const auto o = scalar.missCurve();
        for (const std::uint64_t m : {1u, 3u, 16u, 250u}) {
            EXPECT_EQ(s.missesAt(m), o.missesAt(m))
                << "capacity " << m;
            EXPECT_EQ(s.writebacksAt(m), o.writebacksAt(m))
                << "capacity " << m;
        }
    }
}

} // namespace
} // namespace kb
