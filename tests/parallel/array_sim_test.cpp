/**
 * @file
 * Tests for the time-stepped array simulator and the Section 4
 * dataflows: utilization behaviour and the Fig. 3 / Fig. 4 memory
 * growth results.
 */

#include <gtest/gtest.h>

#include "parallel/array_sim.hpp"
#include "parallel/workloads.hpp"
#include "util/stats.hpp"

namespace kb {
namespace {

std::vector<StepWorkload>
uniformSteps(std::size_t count, double in, double out, double ops)
{
    return std::vector<StepWorkload>(count,
                                     StepWorkload{in, out, ops});
}

TEST(ArraySim, ComputeBoundStepsGiveFullUtilization)
{
    const ArrayMachine m{4, 1.0, 1.0, 1.0, 4};
    // 100 ops vs 10 words: compute dominates.
    const auto r = simulateArray(m, uniformSteps(200, 10, 0, 100));
    EXPECT_GT(r.utilization(), 0.95);
}

TEST(ArraySim, IoBoundStepsStarveThePes)
{
    const ArrayMachine m{4, 1.0, 1.0, 1.0, 4};
    // 100 words vs 10 ops: the channel is the bottleneck.
    const auto r = simulateArray(m, uniformSteps(200, 100, 0, 10));
    EXPECT_LT(r.utilization(), 0.15);
}

TEST(ArraySim, BalancedStepsNearFullOverlap)
{
    const ArrayMachine m{1, 1.0, 1.0, 1.0, 1};
    const auto r = simulateArray(m, uniformSteps(500, 50, 0, 50));
    EXPECT_GT(r.utilization(), 0.95);
    EXPECT_NEAR(r.io_cycles, r.compute_cycles, 1.0);
}

TEST(ArraySim, MakespanAtLeastEitherResource)
{
    const ArrayMachine m{2, 1.0, 1.0, 1.0, 2};
    const auto r = simulateArray(m, uniformSteps(100, 30, 10, 25));
    EXPECT_GE(r.cycles, r.io_cycles);
    EXPECT_GE(r.cycles, r.compute_cycles);
}

TEST(ArraySim, EmptyStepsAreTrivial)
{
    const ArrayMachine m{1, 1.0, 1.0, 1.0, 1};
    const auto r = simulateArray(m, {});
    EXPECT_DOUBLE_EQ(r.cycles, 0.0);
    EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

TEST(ArraySim, MinMemorySearchFindsThreshold)
{
    // Utilization jumps once memory crosses 100 words.
    auto run = [](std::uint64_t m) {
        ArraySimResult r;
        r.cycles = 100.0;
        r.compute_cycles = m >= 100 ? 99.0 : 10.0;
        return r;
    };
    EXPECT_EQ(minMemoryForUtilization(run, 0.95, 4, 1u << 20), 100u);
}

TEST(ArraySim, MinMemorySearchReportsFailure)
{
    auto run = [](std::uint64_t) {
        ArraySimResult r;
        r.cycles = 100.0;
        r.compute_cycles = 10.0;
        return r;
    };
    EXPECT_EQ(minMemoryForUtilization(run, 0.95, 4, 1024), 1025u);
}

TEST(Workloads, LinearMatmulUtilizationMonotoneInMemory)
{
    const std::uint64_t n = 256, p = 8;
    // C/IO per PE = 16: a single PE balances matmul at b ~ 16.
    double prev = 0.0;
    for (std::uint64_t m : {64u, 256u, 1024u, 4096u, 16384u}) {
        const auto wl = matmulLinearWorkload(n, p, m, 16.0, 1.0);
        const auto r = simulateArray(wl.machine, wl.steps);
        EXPECT_GE(r.utilization(), prev - 0.02) << "m=" << m;
        prev = r.utilization();
    }
}

TEST(Workloads, Figure3PerPeMemoryGrowsLinearly)
{
    // Section 4.1: the per-PE memory reaching 95% utilization should
    // grow ~linearly with p for the linear-array matmul.
    const double ops_rate = 8.0; // C/IO = 8 per PE
    std::vector<double> ps, mems;
    for (std::uint64_t p : {2u, 4u, 8u, 16u}) {
        auto run = [&](std::uint64_t m_pe) {
            const auto wl =
                matmulLinearWorkload(512, p, m_pe, ops_rate, 1.0);
            return simulateArray(wl.machine, wl.steps);
        };
        const auto m_needed =
            minMemoryForUtilization(run, 0.95, 8, 1u << 22);
        ASSERT_LE(m_needed, 1u << 22) << "p=" << p;
        ps.push_back(static_cast<double>(p));
        mems.push_back(static_cast<double>(m_needed));
    }
    const auto fit = fitPowerLaw(ps, mems);
    EXPECT_NEAR(fit.slope, 1.0, 0.25);
    EXPECT_GT(fit.r2, 0.95);
}

TEST(Workloads, Figure4MeshPerPeMemoryFlat)
{
    // Section 4.2: mesh matmul needs per-PE memory independent of p.
    const double ops_rate = 8.0;
    std::vector<double> ps, mems;
    for (std::uint64_t p : {2u, 4u, 8u, 16u}) {
        auto run = [&](std::uint64_t m_pe) {
            const auto wl =
                matmulMeshWorkload(512, p, m_pe, ops_rate, 1.0);
            return simulateArray(wl.machine, wl.steps);
        };
        const auto m_needed =
            minMemoryForUtilization(run, 0.95, 8, 1u << 22);
        ASSERT_LE(m_needed, 1u << 22) << "p=" << p;
        ps.push_back(static_cast<double>(p));
        mems.push_back(static_cast<double>(m_needed));
    }
    const auto fit = fitPowerLaw(ps, mems);
    EXPECT_LT(std::abs(fit.slope), 0.25);
}

TEST(Workloads, MeshGrid3dPerPeMemoryGrows)
{
    // Section 4.2's exception: d = 3 grid on a mesh needs per-PE
    // memory growing with p.
    const double ops_rate = 24.0;
    std::vector<double> ps, mems;
    for (std::uint64_t p : {2u, 4u, 8u}) {
        auto run = [&](std::uint64_t m_pe) {
            // Grid large enough that the balanced block (edge ~ 26 p for
            // this C/IO) leaves many macro-steps to pipeline.
            const auto wl = grid3dMeshWorkload(1024, 64, p, m_pe,
                                               ops_rate, 1.0);
            return simulateArray(wl.machine, wl.steps);
        };
        const auto m_needed =
            minMemoryForUtilization(run, 0.95, 32, 1u << 24);
        ASSERT_LE(m_needed, 1u << 24) << "p=" << p;
        ps.push_back(static_cast<double>(p));
        mems.push_back(static_cast<double>(m_needed));
    }
    const auto fit = fitPowerLaw(ps, mems);
    EXPECT_GT(fit.slope, 0.5);
}

TEST(Workloads, BlockEdgeGrowsWithMemory)
{
    const auto small = matmulLinearWorkload(256, 4, 64);
    const auto large = matmulLinearWorkload(256, 4, 4096);
    EXPECT_GT(large.block_edge, small.block_edge);
}

} // namespace
} // namespace kb
