/**
 * @file
 * Tests for the Section 4 aggregate-PE algebra.
 */

#include <gtest/gtest.h>

#include "parallel/aggregate.hpp"
#include "parallel/warp.hpp"

namespace kb {
namespace {

PeConfig
unitPe()
{
    return PeConfig{100.0, 10.0, 1000};
}

TEST(Aggregate, LinearArrayScalesComputeOnly)
{
    const ArraySpec spec{Topology::Linear, 8, unitPe()};
    const auto agg = aggregatePe(spec);
    EXPECT_DOUBLE_EQ(agg.comp_bandwidth, 800.0);
    EXPECT_DOUBLE_EQ(agg.io_bandwidth, 10.0); // boundary only
    EXPECT_EQ(agg.memory_words, 8000u);
    EXPECT_EQ(spec.peCount(), 8u);
}

TEST(Aggregate, MeshScalesComputeQuadraticallyIoLinearly)
{
    const ArraySpec spec{Topology::Mesh2D, 4, unitPe()};
    const auto agg = aggregatePe(spec);
    EXPECT_DOUBLE_EQ(agg.comp_bandwidth, 1600.0);
    EXPECT_DOUBLE_EQ(agg.io_bandwidth, 40.0);
    EXPECT_EQ(agg.memory_words, 16000u);
    EXPECT_EQ(spec.peCount(), 16u);
}

TEST(Aggregate, AlphaEqualsPForBothTopologies)
{
    for (std::uint64_t p : {1u, 2u, 8u, 32u}) {
        EXPECT_DOUBLE_EQ(
            aggregateAlpha({Topology::Linear, p, unitPe()}),
            static_cast<double>(p));
        EXPECT_DOUBLE_EQ(
            aggregateAlpha({Topology::Mesh2D, p, unitPe()}),
            static_cast<double>(p));
    }
}

TEST(Aggregate, LinearArrayPerPeMemoryGrowsLinearly)
{
    // Section 4.1's headline: per-PE memory ~ p * M for alpha^2 laws.
    const auto law = ScalingLaw::power(2.0);
    const std::uint64_t m0 = 1024;
    for (std::uint64_t p : {2u, 4u, 16u}) {
        const ArraySpec spec{Topology::Linear, p, unitPe()};
        const auto per_pe = requiredPerPeMemory(law, spec, m0);
        ASSERT_TRUE(per_pe.has_value());
        EXPECT_DOUBLE_EQ(*per_pe, static_cast<double>(p * m0));
    }
}

TEST(Aggregate, MeshPerPeMemoryConstantForAlphaSquared)
{
    // Section 4.2's headline: the mesh supplies the alpha^2 memory
    // for free.
    const auto law = ScalingLaw::power(2.0);
    const std::uint64_t m0 = 1024;
    for (std::uint64_t p : {2u, 4u, 16u}) {
        const ArraySpec spec{Topology::Mesh2D, p, unitPe()};
        const auto per_pe = requiredPerPeMemory(law, spec, m0);
        ASSERT_TRUE(per_pe.has_value());
        EXPECT_DOUBLE_EQ(*per_pe, static_cast<double>(m0));
    }
}

TEST(Aggregate, MeshPerPeMemoryGrowsForHigherDimensionalGrids)
{
    // d = 3 grid on a mesh: per-PE memory must grow like p.
    const auto law = ScalingLaw::power(3.0);
    const std::uint64_t m0 = 64;
    const auto at = [&](std::uint64_t p) {
        return *requiredPerPeMemory(law, {Topology::Mesh2D, p, unitPe()},
                                    m0);
    };
    EXPECT_DOUBLE_EQ(at(2), 2.0 * m0);
    EXPECT_DOUBLE_EQ(at(8), 8.0 * m0);
}

TEST(Aggregate, ImpossibleLawPropagates)
{
    const ArraySpec spec{Topology::Linear, 4, unitPe()};
    EXPECT_FALSE(
        requiredPerPeMemory(ScalingLaw::impossible(), spec, 64)
            .has_value());
}

TEST(Aggregate, TopologyNames)
{
    EXPECT_STREQ(topologyName(Topology::Linear), "linear");
    EXPECT_STREQ(topologyName(Topology::Mesh2D), "mesh2d");
}

TEST(Warp, CellMatchesSection5Numbers)
{
    const auto pe = warpCellPe();
    EXPECT_DOUBLE_EQ(pe.comp_bandwidth, 10e6);
    EXPECT_DOUBLE_EQ(pe.io_bandwidth, 20e6);
    EXPECT_EQ(pe.memory_words, 64u * 1024u);
    EXPECT_DOUBLE_EQ(pe.compIoRatio(), 0.5);
}

TEST(Warp, ArrayAlphaEqualsCellCount)
{
    const auto spec = warpArray(10);
    EXPECT_EQ(spec.topo, Topology::Linear);
    EXPECT_DOUBLE_EQ(aggregateAlpha(spec), 10.0);
}

} // namespace
} // namespace kb
