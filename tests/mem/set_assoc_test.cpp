/**
 * @file
 * Unit tests for the set-associative memory and replacement policies.
 */

#include <gtest/gtest.h>

#include "mem/lru_cache.hpp"
#include "mem/set_assoc.hpp"
#include "util/rng.hpp"

namespace kb {
namespace {

TEST(SetAssoc, CapacityIsSetsTimesWays)
{
    SetAssocCache c(8, 4, ReplacementPolicy::LRU);
    EXPECT_EQ(c.capacity(), 32u);
    EXPECT_EQ(c.sets(), 8u);
    EXPECT_EQ(c.ways(), 4u);
}

TEST(SetAssoc, NameEncodesConfig)
{
    SetAssocCache c(8, 4, ReplacementPolicy::FIFO);
    EXPECT_EQ(c.name(), "setassoc-4w-fifo");
}

TEST(SetAssoc, ConflictMissesWithinOneSet)
{
    // Two ways; three addresses mapping to set 0 thrash.
    SetAssocCache c(4, 2, ReplacementPolicy::LRU);
    for (int rep = 0; rep < 3; ++rep) {
        c.access(0, false);
        c.access(4, false);
        c.access(8, false);
    }
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(SetAssoc, HitsInDifferentSets)
{
    SetAssocCache c(4, 1, ReplacementPolicy::LRU);
    c.access(0, false);
    c.access(1, false);
    c.access(2, false);
    EXPECT_TRUE(c.access(0, false));
    EXPECT_TRUE(c.access(1, false));
}

TEST(SetAssoc, LruPolicyRefreshesOnUse)
{
    SetAssocCache c(1, 2, ReplacementPolicy::LRU);
    c.access(0, false);
    c.access(1, false);
    c.access(0, false); // refresh 0; victim should be 1
    c.access(2, false);
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(1, false));
}

TEST(SetAssoc, FifoPolicyIgnoresUse)
{
    SetAssocCache c(1, 2, ReplacementPolicy::FIFO);
    c.access(0, false);
    c.access(1, false);
    c.access(0, false); // use does not refresh FIFO stamp
    c.access(2, false); // evicts 0 (oldest fill)
    EXPECT_FALSE(c.access(0, false));
}

TEST(SetAssoc, RandomPolicyStaysWithinCapacity)
{
    SetAssocCache c(2, 2, ReplacementPolicy::Random, 99);
    Xoshiro256 rng(5);
    for (int i = 0; i < 1000; ++i)
        c.access(rng.below(64), false);
    EXPECT_EQ(c.stats().accesses, 1000u);
    EXPECT_EQ(c.stats().hits + c.stats().misses, 1000u);
}

TEST(SetAssoc, DirtyEvictionWritesBack)
{
    SetAssocCache c(1, 1, ReplacementPolicy::LRU);
    c.access(0, true);
    c.access(1, false);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SetAssoc, FlushCountsDirtyWords)
{
    SetAssocCache c(2, 2, ReplacementPolicy::LRU);
    c.access(0, true);
    c.access(1, true);
    c.access(2, false);
    c.flush();
    EXPECT_EQ(c.stats().writebacks, 2u);
}

/**
 * Property: a fully-set-associative configuration (1 set, W ways, LRU)
 * must behave exactly like the LruCache of capacity W.
 */
class FullyAssocEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(FullyAssocEquivalence, MatchesLruCache)
{
    const std::uint64_t ways = 8;
    SetAssocCache sa(1, ways, ReplacementPolicy::LRU);
    LruCache lru(ways);
    Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t a = rng.below(32);
        const bool w = rng.below(4) == 0;
        EXPECT_EQ(sa.access(a, w), lru.access(a, w)) << "step " << i;
    }
    EXPECT_EQ(sa.stats().misses, lru.stats().misses);
    EXPECT_EQ(sa.stats().writebacks, lru.stats().writebacks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullyAssocEquivalence,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace kb
