/**
 * @file
 * Unit tests for the explicitly managed scratchpad, including its
 * capacity-invariant enforcement (the mechanism that proves a
 * schedule fits in M words).
 */

#include <gtest/gtest.h>

#include "mem/scratchpad.hpp"

namespace kb {
namespace {

TEST(Scratchpad, AllocTracksResidency)
{
    Scratchpad pad(100);
    const auto id = pad.alloc(40, "a");
    EXPECT_EQ(pad.resident(), 40u);
    pad.free(id);
    EXPECT_EQ(pad.resident(), 0u);
}

TEST(Scratchpad, PeakUsageHighWaterMark)
{
    Scratchpad pad(100);
    const auto a = pad.alloc(30);
    const auto b = pad.alloc(50);
    pad.free(a);
    const auto c = pad.alloc(20);
    EXPECT_EQ(pad.stats().peak_usage, 80u);
    pad.free(b);
    pad.free(c);
}

TEST(Scratchpad, LoadsAndStoresBillWords)
{
    Scratchpad pad(10);
    const auto id = pad.alloc(8);
    pad.load(id, 8);
    pad.load(id, 4);
    pad.store(id, 8);
    EXPECT_EQ(pad.stats().loads, 12u);
    EXPECT_EQ(pad.stats().stores, 8u);
    EXPECT_EQ(pad.stats().ioWords(), 20u);
    pad.free(id);
}

TEST(Scratchpad, ComputeBillsOps)
{
    Scratchpad pad(10);
    pad.compute(1000);
    pad.compute(24);
    EXPECT_EQ(pad.stats().comp_ops, 1024u);
}

TEST(Scratchpad, FitsPredicate)
{
    Scratchpad pad(10);
    const auto id = pad.alloc(6);
    EXPECT_TRUE(pad.fits(4));
    EXPECT_FALSE(pad.fits(5));
    pad.free(id);
}

TEST(ScratchpadDeath, OverflowIsFatal)
{
    EXPECT_EXIT(
        {
            Scratchpad pad(10);
            (void)pad.alloc(11, "too big");
        },
        ::testing::ExitedWithCode(1), "does not fit");
}

TEST(ScratchpadDeath, OverflowBySecondAllocIsFatal)
{
    EXPECT_EXIT(
        {
            Scratchpad pad(10);
            (void)pad.alloc(6);
            (void)pad.alloc(5);
        },
        ::testing::ExitedWithCode(1), "does not fit");
}

TEST(ScopedBuffer, FreesOnScopeExit)
{
    Scratchpad pad(10);
    {
        ScopedBuffer buf(pad, 7, "tmp");
        EXPECT_EQ(pad.resident(), 7u);
        buf.load();
        buf.store(3);
    }
    EXPECT_EQ(pad.resident(), 0u);
    EXPECT_EQ(pad.stats().loads, 7u);
    EXPECT_EQ(pad.stats().stores, 3u);
}

TEST(Scratchpad, ZeroCapacityRejected)
{
    EXPECT_EXIT({ Scratchpad pad(0); }, ::testing::ExitedWithCode(1),
                "capacity");
}

} // namespace
} // namespace kb
