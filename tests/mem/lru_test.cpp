/**
 * @file
 * Unit tests for the fully associative LRU memory.
 */

#include <gtest/gtest.h>

#include "mem/lru_cache.hpp"

namespace kb {
namespace {

TEST(LruCache, HitsAfterFill)
{
    LruCache c(4);
    EXPECT_FALSE(c.access(1, false));
    EXPECT_FALSE(c.access(2, false));
    EXPECT_TRUE(c.access(1, false));
    EXPECT_TRUE(c.access(2, false));
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache c(2);
    c.access(1, false);
    c.access(2, false);
    c.access(1, false); // 2 is now LRU
    c.access(3, false); // evicts 2
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(3));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCache, WritebackOnDirtyEviction)
{
    LruCache c(1);
    c.access(1, true);  // dirty
    c.access(2, false); // evicts dirty 1
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(3, false); // evicts clean 2
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(LruCache, WriteHitMarksDirty)
{
    LruCache c(2);
    c.access(1, false);
    c.access(1, true); // hit, becomes dirty
    c.access(2, false);
    c.access(3, false); // evicts 1, dirty
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(LruCache, FlushWritesBackDirtyWords)
{
    LruCache c(4);
    c.access(1, true);
    c.access(2, false);
    c.access(3, true);
    c.flush();
    EXPECT_EQ(c.stats().writebacks, 2u);
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(LruCache, IoWordsCombinesMissesAndWritebacks)
{
    LruCache c(1);
    c.access(1, true);
    c.access(2, true);
    c.flush();
    // 2 misses, 1 dirty eviction + 1 dirty flush.
    EXPECT_EQ(c.stats().ioWords(), 4u);
}

TEST(LruCache, OccupancyNeverExceedsCapacity)
{
    LruCache c(3);
    for (std::uint64_t a = 0; a < 100; ++a) {
        c.access(a % 7, false);
        EXPECT_LE(c.occupancy(), 3u);
    }
}

TEST(LruCache, CyclicThrashMissesEverything)
{
    LruCache c(3);
    for (int rep = 0; rep < 5; ++rep)
        for (std::uint64_t a = 0; a < 4; ++a)
            c.access(a, false);
    // Capacity 3 on a cycle of 4 with LRU: every access misses.
    EXPECT_EQ(c.stats().misses, 20u);
}

TEST(LruCache, MissRatio)
{
    LruCache c(2);
    c.access(1, false);
    c.access(1, false);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.5);
}

TEST(LruCache, ResetStatsKeepsContents)
{
    LruCache c(2);
    c.access(1, false);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.contains(1));
}

} // namespace
} // namespace kb
