/**
 * @file
 * Unit tests for the fully associative LRU memory.
 */

#include <cstdint>
#include <list>
#include <unordered_map>

#include <gtest/gtest.h>

#include "mem/lru_cache.hpp"
#include "util/rng.hpp"

namespace kb {
namespace {

TEST(LruCache, HitsAfterFill)
{
    LruCache c(4);
    EXPECT_FALSE(c.access(1, false));
    EXPECT_FALSE(c.access(2, false));
    EXPECT_TRUE(c.access(1, false));
    EXPECT_TRUE(c.access(2, false));
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache c(2);
    c.access(1, false);
    c.access(2, false);
    c.access(1, false); // 2 is now LRU
    c.access(3, false); // evicts 2
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(3));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCache, WritebackOnDirtyEviction)
{
    LruCache c(1);
    c.access(1, true);  // dirty
    c.access(2, false); // evicts dirty 1
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(3, false); // evicts clean 2
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(LruCache, WriteHitMarksDirty)
{
    LruCache c(2);
    c.access(1, false);
    c.access(1, true); // hit, becomes dirty
    c.access(2, false);
    c.access(3, false); // evicts 1, dirty
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(LruCache, FlushWritesBackDirtyWords)
{
    LruCache c(4);
    c.access(1, true);
    c.access(2, false);
    c.access(3, true);
    c.flush();
    EXPECT_EQ(c.stats().writebacks, 2u);
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(LruCache, IoWordsCombinesMissesAndWritebacks)
{
    LruCache c(1);
    c.access(1, true);
    c.access(2, true);
    c.flush();
    // 2 misses, 1 dirty eviction + 1 dirty flush.
    EXPECT_EQ(c.stats().ioWords(), 4u);
}

TEST(LruCache, OccupancyNeverExceedsCapacity)
{
    LruCache c(3);
    for (std::uint64_t a = 0; a < 100; ++a) {
        c.access(a % 7, false);
        EXPECT_LE(c.occupancy(), 3u);
    }
}

TEST(LruCache, CyclicThrashMissesEverything)
{
    LruCache c(3);
    for (int rep = 0; rep < 5; ++rep)
        for (std::uint64_t a = 0; a < 4; ++a)
            c.access(a, false);
    // Capacity 3 on a cycle of 4 with LRU: every access misses.
    EXPECT_EQ(c.stats().misses, 20u);
}

TEST(LruCache, MissRatio)
{
    LruCache c(2);
    c.access(1, false);
    c.access(1, false);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.5);
}

TEST(LruCache, ResetStatsKeepsContents)
{
    LruCache c(2);
    c.access(1, false);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.contains(1));
}

/**
 * Straightforward std::list + map LRU, the textbook formulation the
 * array-backed implementation replaced; kept here as the oracle for
 * the randomized cross-check.
 */
class ReferenceLru
{
  public:
    explicit ReferenceLru(std::uint64_t capacity) : capacity_(capacity)
    {
    }

    bool
    access(std::uint64_t addr, bool write)
    {
        auto it = map_.find(addr);
        if (it != map_.end()) {
            it->second->second |= write;
            order_.splice(order_.begin(), order_, it->second);
            return true;
        }
        ++misses_;
        if (map_.size() >= capacity_) {
            const auto &victim = order_.back();
            if (victim.second)
                ++writebacks_;
            map_.erase(victim.first);
            order_.pop_back();
        }
        order_.emplace_front(addr, write);
        map_[addr] = order_.begin();
        return false;
    }

    void
    flush()
    {
        for (const auto &e : order_)
            if (e.second)
                ++writebacks_;
        order_.clear();
        map_.clear();
    }

    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    std::uint64_t capacity_;
    std::list<std::pair<std::uint64_t, bool>> order_;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, bool>>::iterator>
        map_;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

TEST(LruCache, RandomizedMatchesReferenceImplementation)
{
    for (const std::uint64_t cap : {1u, 2u, 7u, 32u, 257u}) {
        SCOPED_TRACE("capacity " + std::to_string(cap));
        Xoshiro256 rng(cap);
        LruCache cache(cap);
        ReferenceLru ref(cap);
        for (int i = 0; i < 20000; ++i) {
            // Skewed mix: hot set, cold tail, occasional fresh words.
            const std::uint64_t addr =
                rng.below(4) == 0 ? rng.below(8 * cap + 64)
                                  : rng.below(2 * cap + 8);
            const bool write = rng.below(5) == 0;
            const bool hit = cache.access(addr, write);
            const bool ref_hit = ref.access(addr, write);
            ASSERT_EQ(hit, ref_hit) << "access " << i;
        }
        cache.flush();
        ref.flush();
        EXPECT_EQ(cache.stats().misses, ref.misses());
        EXPECT_EQ(cache.stats().writebacks, ref.writebacks());
        EXPECT_EQ(cache.occupancy(), 0u);
    }
}

} // namespace
} // namespace kb
