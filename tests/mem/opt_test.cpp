/**
 * @file
 * Unit and property tests for the Belady OPT simulator.
 */

#include <vector>

#include <gtest/gtest.h>

#include "mem/lru_cache.hpp"
#include "mem/opt_cache.hpp"
#include "util/rng.hpp"

namespace kb {
namespace {

std::vector<Access>
toTrace(std::initializer_list<std::uint64_t> addrs)
{
    std::vector<Access> t;
    for (auto a : addrs)
        t.push_back(readOf(a));
    return t;
}

TEST(OptCache, ColdMissesOnly)
{
    const auto trace = toTrace({1, 2, 3});
    const auto res = simulateOpt(trace, 8);
    EXPECT_EQ(res.stats.misses, 3u);
    EXPECT_EQ(res.stats.hits, 0u);
}

TEST(OptCache, BeladyClassicExample)
{
    // OPT on a cycle of 4 with capacity 3 misses less than LRU: LRU
    // misses everything; OPT keeps 3 and re-fetches only one per lap.
    std::vector<Access> trace;
    for (int rep = 0; rep < 5; ++rep)
        for (std::uint64_t a = 0; a < 4; ++a)
            trace.push_back(readOf(a));
    const auto opt = simulateOpt(trace, 3);
    LruCache lru(3);
    for (const auto &a : trace)
        lru.access(a);
    EXPECT_EQ(lru.stats().misses, 20u);
    EXPECT_LT(opt.stats.misses, 20u);
    EXPECT_GE(opt.stats.misses, 4u); // at least the cold misses
}

TEST(OptCache, EvictsFarthestFuture)
{
    // 1 2 3 1 2: with capacity 2, after loading 1,2, access 3 should
    // evict 2 (next use farther than 1)? No: 1 is used at t=3, 2 at
    // t=4, so evict 2... wait, farthest future = 2 (t=4) vs 1 (t=3):
    // OPT evicts 2, keeping 1 -> hit at t=3, miss at t=4.
    const auto trace = toTrace({1, 2, 3, 1, 2});
    const auto res = simulateOpt(trace, 2);
    EXPECT_EQ(res.stats.misses, 4u);
    EXPECT_EQ(res.stats.hits, 1u);
}

TEST(OptCache, WritebackAccounting)
{
    std::vector<Access> trace{writeOf(1), readOf(2), readOf(3)};
    const auto res = simulateOpt(trace, 1, /*flush_at_end=*/true);
    // 3 misses; the dirty word 1 is written back on eviction.
    EXPECT_EQ(res.stats.misses, 3u);
    EXPECT_EQ(res.stats.writebacks, 1u);
}

TEST(OptCache, FlushAtEndCountsResidentDirty)
{
    std::vector<Access> trace{writeOf(1)};
    EXPECT_EQ(simulateOpt(trace, 4, true).stats.writebacks, 1u);
    EXPECT_EQ(simulateOpt(trace, 4, false).stats.writebacks, 0u);
}

/**
 * The defining property: OPT never misses more than LRU at equal
 * capacity (checked on random traces at multiple capacities).
 */
class OptVsLru : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OptVsLru, OptIsNoWorseThanLru)
{
    const auto [seed, addr_space] = GetParam();
    Xoshiro256 rng(static_cast<std::uint64_t>(seed));
    std::vector<Access> trace;
    for (int i = 0; i < 3000; ++i)
        trace.push_back(rng.below(3) == 0
                            ? writeOf(rng.below(addr_space))
                            : readOf(rng.below(addr_space)));

    for (std::uint64_t cap : {2u, 5u, 16u, 64u}) {
        const auto opt = simulateOpt(trace, cap);
        LruCache lru(cap);
        for (const auto &a : trace)
            lru.access(a);
        EXPECT_LE(opt.stats.misses, lru.stats().misses)
            << "capacity " << cap;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, OptVsLru,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(10, 50, 200)));

TEST(OptCache, HitsEverythingWhenItFits)
{
    Xoshiro256 rng(4);
    std::vector<Access> trace;
    for (int i = 0; i < 1000; ++i)
        trace.push_back(readOf(rng.below(16)));
    const auto res = simulateOpt(trace, 16);
    EXPECT_EQ(res.stats.misses, 16u); // cold only
}

} // namespace
} // namespace kb
