/**
 * @file
 * Quickstart: the library in one sitting.
 *
 * 1. Describe a processing element (C, IO, M).
 * 2. Run a real computation (tiled matmul) on the simulated PE and
 *    get its exact Ccomp and Cio.
 * 3. Check Kung's balance condition.
 * 4. Grow C/IO by alpha and compute the memory that restores balance
 *    — closed form and by search on the measured curve. The measured
 *    curve comes from a declarative SweepJob on the experiment
 *    engine, which also brackets the numeric search.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "analysis/sweep.hpp"
#include "core/balance.hpp"
#include "core/rebalance.hpp"
#include "engine/engine.hpp"
#include "kernels/matmul.hpp"

int
main()
{
    using namespace kb;

    // A PE delivering 200 Mops/s against a 10 Mword/s channel, with
    // a 512-word local memory: C/IO = 20, which matches matmul's
    // R(512) — a balanced design point.
    PeConfig pe;
    pe.comp_bandwidth = 200e6;
    pe.io_bandwidth = 10e6;
    pe.memory_words = 512;
    std::cout << "PE: C/IO = " << pe.compIoRatio() << ", M = "
              << pe.memory_words << " words\n";

    // Multiply two 320 x 320 matrices with the paper's decomposition
    // scheme. measure() really computes the product (and verifies it
    // against a reference) while the scratchpad counts every word
    // crossing the PE boundary.
    MatmulKernel matmul;
    const std::uint64_t n = 320;
    const auto run = matmul.measure(n, pe.memory_words);
    std::cout << "matmul N=" << n << ": Ccomp = " << run.cost.comp_ops
              << " ops, Cio = " << run.cost.io_words
              << " words, R(M) = " << run.cost.ratio()
              << (run.verified ? "  [result verified]\n" : "\n");

    // Balance check: computing time vs I/O time (Section 2).
    const auto report = checkBalance(pe, run.cost, 0.10);
    std::cout << "computing time " << report.compute_time
              << " s, I/O time " << report.io_time << " s -> "
              << balanceStateName(report.state) << "\n";

    // Technology bump: C grows 3x, IO stays. The paper's question:
    // how much memory restores balance?
    const double alpha = 3.0;
    const auto law = matmul.law(); // M_new = alpha^2 M_old
    const auto closed =
        rebalanceClosedForm(law, pe.memory_words, alpha);
    std::cout << "\nalpha = " << alpha << ": " << law.describe()
              << " -> M_new = " << closed.m_new << " words ("
              << closed.growth_factor << "x)\n";

    // The same answer, recovered purely from measurements. The R(M)
    // curve is measured as one declarative SweepJob (fixed problem
    // pinned with n_hint so every point describes the same matmul);
    // the grid sample that first reaches the target ratio brackets
    // the numeric search, which then only refines inside [M_old,
    // bracket] — same smallest-M answer, fewer probes.
    const std::uint64_t m_max = 1u << 18;
    SweepJob sweep;
    sweep.kernel = "matmul";
    sweep.m_lo = pe.memory_words;
    sweep.m_hi = m_max;
    sweep.points = 7;
    sweep.n_hint = n;
    const auto curve = toRatioCurve(ExperimentEngine().runOne(sweep));

    auto measured_ratio = [&](std::uint64_t m) {
        return matmul.measure(n, m, false).cost.ratio();
    };
    const double target = alpha * curve.samples.front().ratio;
    std::uint64_t bracket = m_max;
    for (const auto &sample : curve.samples) {
        if (sample.ratio >= target) {
            bracket = sample.m;
            break;
        }
    }
    const auto numeric = rebalanceNumeric(
        measured_ratio, pe.memory_words, alpha, bracket);
    if (numeric.possible) {
        std::cout << "numeric rebalancing on the measured R(M): "
                  << numeric.m_new << " words ("
                  << numeric.growth_factor << "x)\n";
    }

    std::cout << "\nKung's headline: memory must grow much faster "
                 "than compute bandwidth —\nquadratically here, "
                 "exponentially for FFT/sorting (see "
                 "examples/design_explorer).\n";
    return 0;
}
