/**
 * @file
 * Design explorer: a what-if study the paper invites.
 *
 * Suppose compute bandwidth doubles every 18 months while the I/O
 * channel stays fixed (the paper's "increasing I/O bandwidth is
 * difficult in practice"). For each computation class, how much
 * local memory does a balanced PE need over a decade?
 *
 * Build & run:  ./build/examples/design_explorer
 */

#include <cmath>
#include <iostream>
#include <string>

#include "core/rebalance.hpp"
#include "core/scaling_law.hpp"
#include "util/table.hpp"

namespace {

std::string
humanWords(double words)
{
    if (words < 0)
        return "impossible";
    const char *units[] = {"w", "Kw", "Mw", "Gw", "Tw", "Pw"};
    int u = 0;
    while (words >= 1024.0 && u < 5) {
        words /= 1024.0;
        ++u;
    }
    if (words >= 1e6)
        return "> memory of the universe";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", words, units[u]);
    return buf;
}

} // namespace

int
main()
{
    using namespace kb;

    std::cout
        << "Technology scenario: C doubles every 18 months, IO "
           "fixed.\nBaseline: a balanced PE with M = 4096 words "
           "(16 KiB of 32-bit words).\n";

    struct Class
    {
        const char *name;
        ScalingLaw law;
    };
    const Class classes[] = {
        {"matmul / LU (alpha^2)", ScalingLaw::power(2.0)},
        {"grid 2-D (alpha^2)", ScalingLaw::power(2.0)},
        {"grid 3-D (alpha^3)", ScalingLaw::power(3.0)},
        {"grid 4-D (alpha^4)", ScalingLaw::power(4.0)},
        {"FFT / sorting (M^alpha)", ScalingLaw::exponential()},
        {"matvec / trisolve", ScalingLaw::impossible()},
    };

    std::vector<std::string> headers = {"computation class"};
    for (int year : {0, 3, 6, 9})
        headers.push_back("year " + std::to_string(year));
    TextTable table(headers);

    const double m_old = 4096.0;
    for (const auto &cls : classes) {
        auto &row = table.row();
        row.cell(cls.name);
        for (int year : {0, 3, 6, 9}) {
            const double alpha =
                std::pow(2.0, static_cast<double>(year) / 1.5);
            const auto m_new = cls.law.predict(m_old, alpha);
            row.cell(m_new ? humanWords(*m_new)
                           : std::string("impossible"));
        }
    }
    printHeading(std::cout,
                 "Local memory needed to stay balanced (alpha = "
                 "2^(year/1.5))");
    table.print(std::cout);

    std::cout
        << "\nAfter nine years (alpha = 64):\n"
           "  * matrix/2-D-grid PEs need 4096x the memory — costly "
           "but buildable;\n"
           "  * 4-D grids need 16.7M x — hopeless as a pure memory "
           "play;\n"
           "  * FFT/sorting would need M^64 words — \"one should "
           "not expect any substantial speedup\n    without a "
           "significant increase in the PE's I/O bandwidth\" "
           "(Section 5);\n"
           "  * I/O-bounded kernels were never rescuable by memory "
           "at all.\n";
    return 0;
}
