/**
 * @file
 * Design explorer: a what-if study the paper invites.
 *
 * Suppose compute bandwidth doubles every 18 months while the I/O
 * channel stays fixed (the paper's "increasing I/O bandwidth is
 * difficult in practice"). For each computation class, how much
 * local memory does a balanced PE need over a decade?
 *
 * Unlike the original hard-coded table, the study now runs on the
 * experiment engine: each computation class is a declarative SweepJob
 * whose measured R(M) exponent grounds the projection, and each job
 * also carries an LRU model column measured through the engine's
 * stack-distance fast path — the job pins one schedule (schedule_m)
 * and the whole Cio(M) curve falls out of a single trace pass.
 *
 * Build & run:  ./build/examples/design_explorer
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/sweep.hpp"
#include "engine/curve_store.hpp"
#include "engine/engine.hpp"
#include "kernels/registry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace kb;

std::string
humanWords(double words)
{
    if (words < 0)
        return "impossible";
    const char *units[] = {"w", "Kw", "Mw", "Gw", "Tw", "Pw"};
    int u = 0;
    while (words >= 1024.0 && u < 5) {
        words /= 1024.0;
        ++u;
    }
    if (words >= 1e6)
        return "> memory of the universe";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", words, units[u]);
    return buf;
}

} // namespace

int
main()
{
    std::cout
        << "Technology scenario: C doubles every 18 months, IO "
           "fixed.\nBaseline: a balanced PE with M = 4096 words "
           "(16 KiB of 32-bit words).\n\n";

    // One declarative job per computation class. Every job asks for
    // an LRU model column with a pinned schedule (schedule_m =
    // m_hi), so the engine measures the whole Cio(M) curve from ONE
    // trace emission per kernel (the stack-distance fast path).
    const std::vector<std::string> class_kernels = {
        "matmul", "grid2d", "grid3d", "grid4d", "fft", "matvec"};
    auto &registry = KernelRegistry::instance();

    std::vector<SweepJob> jobs;
    for (const auto &name : class_kernels) {
        std::uint64_t m_lo = 0, m_hi = 0;
        registry.shared(name)->defaultSweepRange(m_lo, m_hi);
        SweepJob job;
        job.kernel = name;
        // A quarter of the default ceiling keeps the whole study in
        // the asymptotic regime but interactive-fast.
        job.m_hi = std::max<std::uint64_t>(m_hi / 4, m_lo * 4);
        job.points = 5;
        job.models = {MemoryModelKind::Lru};
        job.schedule_m = job.m_hi;
        jobs.push_back(job);
    }

    ExperimentEngine engine;
    const auto results = engine.run(jobs);

    // Status only (stderr keeps stdout byte-stable): with
    // KB_CURVE_CACHE_DIR set, a re-run of the explorer serves every
    // curve from the on-disk store and emits no traces at all.
    const auto store_stats = CurveStore::instance().stats();
    const std::string dir = CurveStore::instance().diskDirectory();
    std::cerr << "curve store: " << store_stats.hits << " hits ("
              << store_stats.disk_hits << " from disk), "
              << store_stats.misses << " misses; disk tier "
              << (dir.empty() ? "disabled (set KB_CURVE_CACHE_DIR)"
                              : "at " + dir)
              << "\n";

    printHeading(std::cout,
                 "Measured balance curves (engine SweepJobs; LRU "
                 "column = Cio(M) of one fixed schedule, single-pass "
                 "stack-distance sweep)");
    TextTable measured({"kernel", "R(M) exponent", "r^2",
                        "LRU Cio at m_lo", "LRU Cio at m_hi",
                        "paper law"});
    for (const auto &result : results) {
        const auto curve = toRatioCurve(result);
        const auto fit =
            fitPowerLaw(curve.memories(), curve.ratios());
        const auto lru = modelColumn(result, MemoryModelKind::Lru);
        const auto kernel = registry.shared(result.job.kernel);
        auto &row = measured.row();
        row.cell(result.job.kernel)
            .cell(fit.slope, 3)
            .cell(fit.r2, 3)
            .cell(static_cast<double>(
                      result.points.front().model_io[lru]),
                  0)
            .cell(static_cast<double>(
                      result.points.back().model_io[lru]),
                  0)
            .cell(kernel->law().describe());
    }
    measured.print(std::cout);
    std::cout << "\n(the LRU column shrinking with M is Kung's "
                 "premise: more local memory, less I/O — matvec's "
                 "flat column is Section 3.6's impossibility)\n\n";

    // The decade projection, driven by each kernel's rebalancing law.
    std::vector<std::string> headers = {"computation class"};
    for (int year : {0, 3, 6, 9})
        headers.push_back("year " + std::to_string(year));
    TextTable table(headers);

    const double m_old = 4096.0;
    for (const auto &name : class_kernels) {
        const auto kernel = registry.shared(name);
        auto &row = table.row();
        row.cell(name + " (" + kernel->law().describe() + ")");
        for (int year : {0, 3, 6, 9}) {
            const double alpha =
                std::pow(2.0, static_cast<double>(year) / 1.5);
            const auto m_new = kernel->law().predict(m_old, alpha);
            row.cell(m_new ? humanWords(*m_new)
                           : std::string("impossible"));
        }
    }
    printHeading(std::cout,
                 "Local memory needed to stay balanced (alpha = "
                 "2^(year/1.5))");
    table.print(std::cout);

    std::cout
        << "\nAfter nine years (alpha = 64):\n"
           "  * matrix/2-D-grid PEs need 4096x the memory — costly "
           "but buildable;\n"
           "  * 4-D grids need 16.7M x — hopeless as a pure memory "
           "play;\n"
           "  * FFT/sorting would need M^64 words — \"one should "
           "not expect any substantial speedup\n    without a "
           "significant increase in the PE's I/O bandwidth\" "
           "(Section 5);\n"
           "  * I/O-bounded kernels were never rescuable by memory "
           "at all.\n";
    return 0;
}
