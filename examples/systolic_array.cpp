/**
 * @file
 * Watch a processor array saturate: the Section 4 simulator, live.
 *
 * Runs the block-matmul dataflow on linear arrays and meshes of
 * several sizes while sweeping the per-PE memory, printing the
 * utilization surface — the empirical content of Figs. 3 and 4.
 *
 * The surfaces are declared as (array size x memory) grids and the
 * cells run on the experiment engine's pool (parallelFor — the
 * SweepJob treatment applied to a grid that is an array simulation
 * rather than a kernel sweep): each cell writes only its own slot,
 * so the tables are identical for any worker count.
 *
 * Build & run:  ./build/examples/systolic_array
 */

#include <iostream>
#include <vector>

#include "engine/engine.hpp"
#include "parallel/array_sim.hpp"
#include "parallel/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace kb;

/** One declared utilization surface: rows x memory grid of cells. */
struct SurfaceSpec
{
    std::string row_header;
    std::string heading;
    std::vector<std::uint64_t> rows; ///< array sizes p
    /// cell(p, m) -> utilization
    double (*cell)(std::uint64_t p, std::uint64_t m, std::uint64_t n,
                   double ops_rate);
};

double
linearCell(std::uint64_t p, std::uint64_t m, std::uint64_t n,
           double ops_rate)
{
    const auto wl = matmulLinearWorkload(n, p, m, ops_rate);
    return simulateArray(wl.machine, wl.steps).utilization();
}

double
meshCell(std::uint64_t p, std::uint64_t m, std::uint64_t n,
         double ops_rate)
{
    const auto wl = matmulMeshWorkload(n, p, m, ops_rate);
    return simulateArray(wl.machine, wl.steps).utilization();
}

} // namespace

int
main()
{
    const double ops_rate = 8.0; // per-PE C/IO = 8
    const std::uint64_t n = 512;

    std::cout << "Block matmul (N = " << n
              << ") on host-fed arrays; per-PE C/IO = " << ops_rate
              << ".\nCell: utilization (fraction of time a PE "
                 "computes).\n";

    const std::vector<std::uint64_t> mems = {64,   256,  1024,
                                             4096, 16384, 65536};
    const std::vector<SurfaceSpec> surfaces = {
        {"linear p",
         "Linear array: longer chains need more per-PE memory to "
         "saturate",
         {2, 4, 8, 16, 32}, linearCell},
        {"mesh p x p",
         "Square mesh: the saturation memory is independent of p "
         "(automatic balance)",
         {2, 4, 8, 16}, meshCell},
    };

    ExperimentEngine engine;
    for (const auto &spec : surfaces) {
        // Measure the declared grid on the pool, then print.
        std::vector<double> util(spec.rows.size() * mems.size());
        engine.parallelFor(util.size(), [&](std::size_t i) {
            const std::uint64_t p = spec.rows[i / mems.size()];
            const std::uint64_t m = mems[i % mems.size()];
            util[i] = spec.cell(p, m, n, ops_rate);
        });

        std::vector<std::string> headers = {spec.row_header};
        for (const auto m : mems)
            headers.push_back("M=" + std::to_string(m));
        TextTable table(headers);
        for (std::size_t r = 0; r < spec.rows.size(); ++r) {
            auto &row = table.row();
            row.cell(spec.rows[r]);
            for (std::size_t c = 0; c < mems.size(); ++c)
                row.cell(util[r * mems.size() + c], 3);
        }
        printHeading(std::cout, spec.heading);
        table.print(std::cout);
    }

    std::cout
        << "\nRead across a row to find where utilization reaches "
           "~1.0: on the chain that point\nshifts right "
           "proportionally to p; on the mesh it does not move — "
           "Kung's Figs. 3 and 4.\n";
    return 0;
}
