/**
 * @file
 * Watch a processor array saturate: the Section 4 simulator, live.
 *
 * Runs the block-matmul dataflow on linear arrays and meshes of
 * several sizes while sweeping the per-PE memory, printing the
 * utilization surface — the empirical content of Figs. 3 and 4.
 *
 * Build & run:  ./build/examples/systolic_array
 */

#include <iostream>

#include "parallel/array_sim.hpp"
#include "parallel/workloads.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace kb;

    const double ops_rate = 8.0; // per-PE C/IO = 8
    const std::uint64_t n = 512;

    std::cout << "Block matmul (N = " << n
              << ") on host-fed arrays; per-PE C/IO = " << ops_rate
              << ".\nCell: utilization (fraction of time a PE "
                 "computes).\n";

    const std::vector<std::uint64_t> mems = {64,   256,  1024,
                                             4096, 16384, 65536};

    // Linear arrays (Fig. 3): saturation moves right as p grows.
    std::vector<std::string> headers = {"linear p"};
    for (const auto m : mems)
        headers.push_back("M=" + std::to_string(m));
    TextTable linear(headers);
    for (std::uint64_t p : {2u, 4u, 8u, 16u, 32u}) {
        auto &row = linear.row();
        row.cell(p);
        for (const auto m : mems) {
            const auto wl = matmulLinearWorkload(n, p, m, ops_rate);
            const auto r = simulateArray(wl.machine, wl.steps);
            row.cell(r.utilization(), 3);
        }
    }
    printHeading(std::cout,
                 "Linear array: longer chains need more per-PE "
                 "memory to saturate");
    linear.print(std::cout);

    // Meshes (Fig. 4): the saturation point stays put.
    headers[0] = "mesh p x p";
    TextTable mesh(headers);
    for (std::uint64_t p : {2u, 4u, 8u, 16u}) {
        auto &row = mesh.row();
        row.cell(p);
        for (const auto m : mems) {
            const auto wl = matmulMeshWorkload(n, p, m, ops_rate);
            const auto r = simulateArray(wl.machine, wl.steps);
            row.cell(r.utilization(), 3);
        }
    }
    printHeading(std::cout,
                 "Square mesh: the saturation memory is independent "
                 "of p (automatic balance)");
    mesh.print(std::cout);

    std::cout
        << "\nRead across a row to find where utilization reaches "
           "~1.0: on the chain that point\nshifts right "
           "proportionally to p; on the mesh it does not move — "
           "Kung's Figs. 3 and 4.\n";
    return 0;
}
