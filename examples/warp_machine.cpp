/**
 * @file
 * The CMU Warp machine (Section 5) under the balance model.
 *
 * Models one Warp cell (10 MFLOPS, 20 Mwords/s, 64K words) and Warp
 * arrays of growing length, asking for each computation class: is
 * the cell balanced, and how long can the array grow before the 64K
 * local memories become the binding constraint?
 *
 * Build & run:  ./build/examples/warp_machine
 */

#include <cmath>
#include <iostream>

#include "core/balance.hpp"
#include "kernels/kernel.hpp"
#include "parallel/aggregate.hpp"
#include "parallel/warp.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace kb;

    const PeConfig cell = warpCellPe();
    std::cout << "CMU Warp cell: " << cell.comp_bandwidth / 1e6
              << " MFLOPS, " << cell.io_bandwidth / 1e6
              << " Mwords/s, " << cell.memory_words / 1024
              << "K words of local memory\n"
              << "C/IO = " << cell.compIoRatio()
              << " — the channel is *faster* than the ALU, a "
                 "deliberately conservative design.\n\n";

    // How much C/IO growth can the 64K memory absorb per kernel?
    // Solve R(64K) = alpha_max * R(M0) with M0 = 64 words baseline.
    TextTable headroom({"kernel", "law",
                        "alpha the 64K cell absorbs (from M0=64)"});
    for (const auto id : computeBoundKernelIds()) {
        const auto k = makeKernel(id);
        const double r0 = k->asymptoticRatio(64);
        const double r_warp =
            k->asymptoticRatio(kWarpCellMemoryWords);
        headroom.row()
            .cell(k->name())
            .cell(k->law().describe())
            .cell(r_warp / r0, 4);
    }
    printHeading(std::cout,
                 "C/IO growth absorbable by the 64K-word memory");
    headroom.print(std::cout);

    // Array scaling: per-PE memory demanded as cells are added.
    TextTable scaling({"cells p", "alpha", "matmul per-PE",
                       "grid3d per-PE", "fft per-PE (from M0=64)"});
    for (std::uint64_t p : {2u, 4u, 10u, 20u, 100u}) {
        const auto spec = warpArray(p);
        const auto mm =
            requiredPerPeMemory(ScalingLaw::power(2.0), spec, 64);
        const auto g3 =
            requiredPerPeMemory(ScalingLaw::power(3.0), spec, 64);
        const auto fft =
            requiredPerPeMemory(ScalingLaw::exponential(), spec, 64);
        auto fmt = [&](const std::optional<double> &v) {
            if (!v)
                return std::string("impossible");
            if (*v > 1e12)
                return std::string("astronomical");
            std::string s = std::to_string(*v);
            return s.substr(0, s.find('.') + 2);
        };
        scaling.row()
            .cell(p)
            .cell(aggregateAlpha(spec), 3)
            .cell(fmt(mm))
            .cell(fmt(g3))
            .cell(fmt(fft));
    }
    printHeading(std::cout,
                 "Per-PE memory (words) to keep a p-cell linear Warp "
                 "balanced");
    scaling.print(std::cout);

    std::cout
        << "\nReading: matrix kernels scale gracefully (linear "
           "per-PE growth, Fig. 3);\nFFT-class work blows up "
           "exponentially — matching the paper's closing warning "
           "that\nsuch computations need I/O bandwidth, not memory.\n";
    return 0;
}
