/**
 * @file
 * The CMU Warp machine (Section 5) under the balance model.
 *
 * Models one Warp cell (10 MFLOPS, 20 Mwords/s, 64K words) and Warp
 * arrays of growing length, asking for each computation class: is
 * the cell balanced, and how long can the array grow before the 64K
 * local memories become the binding constraint?
 *
 * Both tables are declared as row lists and their cells measured on
 * the experiment engine's pool (parallelFor — deterministic, each
 * cell owns its slot), the same declarative shape the SweepJob
 * benches use.
 *
 * Build & run:  ./build/examples/warp_machine
 */

#include <cmath>
#include <iostream>
#include <optional>
#include <vector>

#include "core/balance.hpp"
#include "engine/engine.hpp"
#include "kernels/kernel.hpp"
#include "parallel/aggregate.hpp"
#include "parallel/warp.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace kb;

    const PeConfig cell = warpCellPe();
    std::cout << "CMU Warp cell: " << cell.comp_bandwidth / 1e6
              << " MFLOPS, " << cell.io_bandwidth / 1e6
              << " Mwords/s, " << cell.memory_words / 1024
              << "K words of local memory\n"
              << "C/IO = " << cell.compIoRatio()
              << " — the channel is *faster* than the ALU, a "
                 "deliberately conservative design.\n\n";

    ExperimentEngine engine;

    // How much C/IO growth can the 64K memory absorb per kernel?
    // Solve R(64K) = alpha_max * R(M0) with M0 = 64 words baseline.
    const auto headroom_ids = computeBoundKernelIds();
    struct HeadroomRow
    {
        std::string name;
        std::string law;
        double alpha = 0.0;
    };
    std::vector<HeadroomRow> headroom_rows(headroom_ids.size());
    engine.parallelFor(headroom_ids.size(), [&](std::size_t i) {
        const auto k = makeKernel(headroom_ids[i]);
        const double r0 = k->asymptoticRatio(64);
        const double r_warp =
            k->asymptoticRatio(kWarpCellMemoryWords);
        headroom_rows[i] = {k->name(), k->law().describe(),
                            r_warp / r0};
    });
    TextTable headroom({"kernel", "law",
                        "alpha the 64K cell absorbs (from M0=64)"});
    for (const auto &r : headroom_rows)
        headroom.row().cell(r.name).cell(r.law).cell(r.alpha, 4);
    printHeading(std::cout,
                 "C/IO growth absorbable by the 64K-word memory");
    headroom.print(std::cout);

    // Array scaling: per-PE memory demanded as cells are added.
    const std::vector<std::uint64_t> cell_counts = {2, 4, 10, 20, 100};
    struct ScalingRow
    {
        std::uint64_t p = 0;
        double alpha = 0.0;
        std::optional<double> matmul, grid3d, fft;
    };
    std::vector<ScalingRow> scaling_rows(cell_counts.size());
    engine.parallelFor(cell_counts.size(), [&](std::size_t i) {
        const std::uint64_t p = cell_counts[i];
        const auto spec = warpArray(p);
        scaling_rows[i] = {
            p, aggregateAlpha(spec),
            requiredPerPeMemory(ScalingLaw::power(2.0), spec, 64),
            requiredPerPeMemory(ScalingLaw::power(3.0), spec, 64),
            requiredPerPeMemory(ScalingLaw::exponential(), spec, 64)};
    });
    TextTable scaling({"cells p", "alpha", "matmul per-PE",
                       "grid3d per-PE", "fft per-PE (from M0=64)"});
    auto fmt = [&](const std::optional<double> &v) {
        if (!v)
            return std::string("impossible");
        if (*v > 1e12)
            return std::string("astronomical");
        std::string s = std::to_string(*v);
        return s.substr(0, s.find('.') + 2);
    };
    for (const auto &r : scaling_rows) {
        scaling.row()
            .cell(r.p)
            .cell(r.alpha, 3)
            .cell(fmt(r.matmul))
            .cell(fmt(r.grid3d))
            .cell(fmt(r.fft));
    }
    printHeading(std::cout,
                 "Per-PE memory (words) to keep a p-cell linear Warp "
                 "balanced");
    scaling.print(std::cout);

    std::cout
        << "\nReading: matrix kernels scale gracefully (linear "
           "per-PE growth, Fig. 3);\nFFT-class work blows up "
           "exponentially — matching the paper's closing warning "
           "that\nsuch computations need I/O bandwidth, not memory.\n";
    return 0;
}
