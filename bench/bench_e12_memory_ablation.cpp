/**
 * @file
 * E12 — design ablation: are the balance exponents artifacts of the
 * explicitly managed scratchpad the paper assumes?
 *
 * The matmul trace is replayed through a dozen memory disciplines at
 * every size; the fitted R(M) exponent survives all of them (with a
 * documented caveat for tiles sized close to 100% of a
 * set-associative cache). The grid is fully declarative: four engine
 * SweepJobs (see e12AblationJobs in analysis/experiments.cpp) — one
 * carrying the scratchpad sample plus the LRU and Belady-OPT
 * columns, and three tile-headroom jobs (tile = M/2, M/4, 3M/4 via
 * SweepJob::schedule_headroom[_num]) carrying the set-associative
 * and random columns. The headroom block maps where conflict
 * thrashing sets in: the closer the tile is to the full capacity,
 * the less associativity slack remains. A second, finer block —
 * eleven 8-way-LRU-only jobs sweeping the tile fraction from 10/20
 * to 20/20 of M — localizes the knee the coarse rows only bracket.
 * This bench only formats the results.
 */

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/driver.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E12", [](bench::BenchContext &ctx) {
        const std::uint64_t n = 160;
        const double ops = 2.0 * static_cast<double>(n) * n * n;

        const auto results = ctx.experimentSweeps();
        KB_REQUIRE(results.size() >= 5,
                   "E12 declares four headline sweep jobs (tight + "
                   "M/2 + M/4 + 3M/4 headroom) plus the knee block");
        const SweepResult &tight = results[0];
        const SweepResult &headroom = results[1];
        const SweepResult &quarter = results[2];
        const SweepResult &three_quarter = results[3];

        struct Discipline
        {
            std::string name;
            const SweepResult *sweep;   ///< which job carries the row
            /// model column index, or npos for the schedule sample
            std::size_t column;
        };
        constexpr std::size_t kSample = static_cast<std::size_t>(-1);

        const std::vector<Discipline> rows = {
            {"scratchpad (paper)", &tight, kSample},
            {"fully-assoc LRU", &tight,
             modelColumn(tight, MemoryModelKind::Lru)},
            {"Belady OPT", &tight,
             modelColumn(tight, MemoryModelKind::Opt)},
            {"8-way LRU (tile=M/4)", &quarter,
             modelColumn(quarter, MemoryModelKind::SetAssocLru)},
            {"8-way LRU (tile=M/2)", &headroom,
             modelColumn(headroom, MemoryModelKind::SetAssocLru)},
            {"8-way LRU (tile=3M/4)", &three_quarter,
             modelColumn(three_quarter, MemoryModelKind::SetAssocLru)},
            {"8-way FIFO (tile=M/4)", &quarter,
             modelColumn(quarter, MemoryModelKind::SetAssocFifo)},
            {"8-way FIFO (tile=M/2)", &headroom,
             modelColumn(headroom, MemoryModelKind::SetAssocFifo)},
            {"8-way FIFO (tile=3M/4)", &three_quarter,
             modelColumn(three_quarter, MemoryModelKind::SetAssocFifo)},
            {"random repl (tile=M/4)", &quarter,
             modelColumn(quarter, MemoryModelKind::RandomRepl)},
            {"random repl (tile=M/2)", &headroom,
             modelColumn(headroom, MemoryModelKind::RandomRepl)},
            {"random repl (tile=3M/4)", &three_quarter,
             modelColumn(three_quarter, MemoryModelKind::RandomRepl)},
        };

        std::vector<std::string> headers = {"discipline"};
        for (const auto &p : tight.points)
            headers.push_back("M=" + std::to_string(p.sample.m));
        headers.push_back("fitted exponent");
        headers.push_back("verdict");

        TextTable table(headers);
        for (const auto &d : rows) {
            auto &r = table.row();
            r.cell(d.name);
            std::vector<double> ms, ratios;
            for (const auto &p : d.sweep->points) {
                const double io =
                    d.column == kSample
                        ? p.sample.io_words
                        : static_cast<double>(p.model_io[d.column]);
                const double ratio = ops / io;
                ms.push_back(static_cast<double>(p.sample.m));
                ratios.push_back(ratio);
                r.cell(ratio, 4);
            }
            const auto fit = fitPowerLaw(ms, ratios);
            r.cell(fit.slope, 3);
            const bool ok = fit.slope > 0.3 && fit.slope < 0.7;
            r.cell(ok ? "sqrt shape holds" : "shape broken");
        }
        printHeading(
            std::cout,
            "matmul R(M) under twelve memory disciplines (N = 160)");
        table.print(std::cout);
        std::cout
            << "\npaper exponent: 0.5. The law is a property of the "
               "computation, not of the replacement policy.\n"
               "(set-associative rows tile for a fraction of M — a "
               "tile sized to 100% of the capacity conflict-thrashes, "
               "which is why real blocked kernels leave associativity "
               "headroom; the M/4 -> M/2 -> 3M/4 block maps how the "
               "slack erodes as the tile approaches the capacity)\n";

        // --- knee localization: the finer tile-fraction sweep ---
        // Jobs 4.. each carry one 8-way LRU row at tile = num/den of
        // M; the fitted exponent collapsing below the sqrt band
        // between adjacent rows IS the conflict-thrashing knee.
        std::vector<std::string> knee_headers = {"tile fraction"};
        for (const auto &p : tight.points)
            knee_headers.push_back("M=" + std::to_string(p.sample.m));
        knee_headers.push_back("fitted exponent");
        knee_headers.push_back("verdict");
        TextTable knee_table(knee_headers);
        for (std::size_t r = 4; r < results.size(); ++r) {
            const SweepResult &row = results[r];
            const std::size_t col =
                modelColumn(row, MemoryModelKind::SetAssocLru);
            auto &cells = knee_table.row();
            cells.cell(
                std::to_string(row.job.schedule_headroom_num) + "/" +
                std::to_string(row.job.schedule_headroom) + " M");
            std::vector<double> ms, ratios;
            for (const auto &p : row.points) {
                const double ratio =
                    ops / static_cast<double>(p.model_io[col]);
                ms.push_back(static_cast<double>(p.sample.m));
                ratios.push_back(ratio);
                cells.cell(ratio, 4);
            }
            const auto fit = fitPowerLaw(ms, ratios);
            cells.cell(fit.slope, 3);
            const bool ok = fit.slope > 0.3 && fit.slope < 0.7;
            cells.cell(ok ? "sqrt shape holds" : "shape broken");
        }
        printHeading(std::cout,
                     "knee localization: 8-way LRU vs tile fraction "
                     "(10/20 M .. 20/20 M)");
        knee_table.print(std::cout);
        std::cout
            << "\nthe first fraction whose exponent leaves the "
               "[0.3, 0.7] band pins the conflict-thrashing knee "
               "that the coarse M/2 vs 3M/4 rows only bracketed\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = false,
                         .threads = true, .shard = true});
}
