/**
 * @file
 * E12 — design ablation: are the balance exponents artifacts of the
 * explicitly managed scratchpad the paper assumes?
 *
 * The matmul trace is replayed through six memory disciplines at
 * every size; the fitted R(M) exponent survives all of them (with a
 * documented caveat for tiles sized to 100% of a set-associative
 * cache). Demand-fill disciplines are replayed by *streaming* the
 * trace straight into the model (ReplaySink) — no intermediate
 * vector; only Belady OPT, which needs the future, buffers it.
 */

#include <cmath>
#include <functional>
#include <iostream>
#include <memory>

#include "bench/driver.hpp"
#include "kernels/matmul.hpp"
#include "mem/lru_cache.hpp"
#include "mem/opt_cache.hpp"
#include "mem/set_assoc.hpp"
#include "trace/replay.hpp"
#include "trace/sink.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace kb;

double
traceIo(const MatmulKernel &k, std::uint64_t n, std::uint64_t sched_m,
        LocalMemory &mem)
{
    // Streaming replay: emitTrace feeds the model in a single pass.
    ReplaySink sink(mem);
    k.emitTrace(n, sched_m, sink);
    sink.flush();
    return static_cast<double>(mem.stats().ioWords());
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench(argc, argv, "E12", [](bench::BenchContext &) {
        MatmulKernel kernel;
        const std::uint64_t n = 160;
        const double ops = 2.0 * static_cast<double>(n) * n * n;

        struct Discipline
        {
            std::string name;
            /// returns measured io at capacity m
            std::function<double(std::uint64_t)> io;
        };

        std::vector<Discipline> rows;
        rows.push_back({"scratchpad (paper)", [&](std::uint64_t m) {
                            return kernel.measure(n, m, false)
                                .cost.io_words;
                        }});
        rows.push_back({"fully-assoc LRU", [&](std::uint64_t m) {
                            LruCache c(m);
                            return traceIo(kernel, n, m, c);
                        }});
        rows.push_back({"Belady OPT", [&](std::uint64_t m) {
                            VectorSink sink;
                            kernel.emitTrace(n, m, sink);
                            return static_cast<double>(
                                simulateOpt(sink.trace(), m)
                                    .stats.ioWords());
                        }});
        rows.push_back({"8-way LRU (tile=M/2)", [&](std::uint64_t m) {
                            SetAssocCache c(m / 8, 8,
                                            ReplacementPolicy::LRU);
                            return traceIo(kernel, n, m / 2, c);
                        }});
        rows.push_back({"8-way FIFO (tile=M/2)", [&](std::uint64_t m) {
                            SetAssocCache c(m / 8, 8,
                                            ReplacementPolicy::FIFO);
                            return traceIo(kernel, n, m / 2, c);
                        }});
        rows.push_back({"random repl (tile=M/2)", [&](std::uint64_t m) {
                            SetAssocCache c(1, m,
                                            ReplacementPolicy::Random,
                                            7);
                            return traceIo(kernel, n, m / 2, c);
                        }});

        const std::vector<std::uint64_t> mem_sizes = {64,  128,  256,
                                                      512, 1024, 2048};

        std::vector<std::string> headers = {"discipline"};
        for (const auto m : mem_sizes)
            headers.push_back("M=" + std::to_string(m));
        headers.push_back("fitted exponent");
        headers.push_back("verdict");

        TextTable table(headers);
        for (const auto &d : rows) {
            auto &r = table.row();
            r.cell(d.name);
            std::vector<double> ms, ratios;
            for (const auto m : mem_sizes) {
                const double io = d.io(m);
                const double ratio = ops / io;
                ms.push_back(static_cast<double>(m));
                ratios.push_back(ratio);
                r.cell(ratio, 4);
            }
            const auto fit = fitPowerLaw(ms, ratios);
            r.cell(fit.slope, 3);
            const bool ok = fit.slope > 0.3 && fit.slope < 0.7;
            r.cell(ok ? "sqrt shape holds" : "shape broken");
        }
        printHeading(
            std::cout,
            "matmul R(M) under six memory disciplines (N = 160)");
        table.print(std::cout);
        std::cout
            << "\npaper exponent: 0.5. The law is a property of the "
               "computation, not of the replacement policy.\n"
               "(set-associative rows tile for M/2 — a tile sized to "
               "100% of the capacity conflict-thrashes, which is why "
               "real blocked kernels leave associativity headroom)\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = false,
                         .threads = false});
}
