/**
 * @file
 * E10 — the Hong-Kung (1981) optimality machinery behind the paper's
 * "best possible" remarks (Sections 3.1, 3.4, 3.5).
 *
 * For the FFT and matmul DAGs: achieved I/O of the heuristic
 * red-blue pebble player vs the analytic lower bounds, across S. The
 * achieved/bound ratio staying bounded as S varies certifies the
 * decompositions are order-optimal — which is exactly what licenses
 * the paper to turn R(M) shapes into *laws*.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "pebble/bounds.hpp"
#include "pebble/builders.hpp"
#include "pebble/exact.hpp"
#include "pebble/heuristic.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E10",
                           [](bench::BenchContext &) {

        // FFT DAG: Q(S) = Theta(n lg n / lg S).
        TextTable fft({"n", "S", "achieved I/O", "lower bound",
                       "achieved/bound", "n lg n / lg S"});
        for (std::uint32_t n : {64u, 128u, 256u}) {
            const Dag dag = buildFftDag(n);
            for (std::uint64_t s : {4u, 8u, 16u, 32u}) {
                const auto run = playHeuristic(dag, s);
                const double bound = fftIoLowerBound(n, s);
                const double shape =
                    n * std::log2(static_cast<double>(n)) /
                    std::log2(static_cast<double>(s));
                fft.row()
                    .cell(static_cast<std::uint64_t>(n))
                    .cell(s)
                    .cell(run.io())
                    .cell(bound, 5)
                    .cell(static_cast<double>(run.io()) / bound, 3)
                    .cell(shape, 5);
            }
        }
        printHeading(std::cout, "FFT butterfly DAG");
        fft.print(std::cout);

        // Matmul DAG: Q(S) = Theta(n^3 / sqrt(S)).
        TextTable mm({"n", "S", "achieved I/O", "lower bound",
                      "achieved/bound"});
        for (std::uint32_t n : {6u, 8u, 10u}) {
            const Dag dag = buildMatmulDag(n);
            for (std::uint64_t s : {8u, 16u, 32u}) {
                const auto run = playHeuristic(dag, s);
                const double bound =
                    std::max(matmulIoLowerBound(n, s),
                             trivialIoLowerBound(2ull * n * n, n * n, s));
                mm.row()
                    .cell(static_cast<std::uint64_t>(n))
                    .cell(s)
                    .cell(run.io())
                    .cell(bound, 5)
                    .cell(static_cast<double>(run.io()) / bound, 3);
            }
        }
        printHeading(std::cout, "Matrix multiplication DAG");
        mm.print(std::cout);

        // Exact optima on tiny DAGs certify the heuristic's quality.
        TextTable exact({"DAG", "S", "exact Q(S)", "heuristic",
                         "heuristic/exact"});
        struct Tiny
        {
            const char *name;
            Dag dag;
            std::uint64_t s;
        };
        std::vector<Tiny> tiny;
        tiny.push_back({"chain-8", buildChain(8), 2});
        tiny.push_back({"tree-4", buildReductionTree(4), 3});
        tiny.push_back({"tree-8", buildReductionTree(8), 3});
        tiny.push_back({"fft-4", buildFftDag(4), 4});
        // The join node has in-degree = width, so the no-recompute
        // heuristic needs S >= width + 1.
        tiny.push_back({"diamond-4", buildDiamond(4), 5});
        for (const auto &t : tiny) {
            const auto opt = solveExactIo(t.dag, t.s);
            const auto heur = playHeuristic(t.dag, t.s);
            exact.row()
                .cell(t.name)
                .cell(t.s)
                .cell(opt ? std::to_string(*opt) : "state-limit")
                .cell(heur.io())
                .cell(opt ? static_cast<double>(heur.io()) /
                                static_cast<double>(*opt)
                          : 0.0,
                      3);
        }
        printHeading(std::cout,
                     "Exact minimum I/O (Dijkstra over game states) vs "
                     "heuristic");
        exact.print(std::cout);
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = false,
                         .threads = false});
}
