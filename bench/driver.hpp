/**
 * @file
 * Shared harness for the bench binaries.
 *
 * The seed's 13 bench mains each hand-rolled the same things:
 * banner printing, serial sweep loops, ASCII tables and ad-hoc CSV
 * dumps, with no command line at all. The driver collapses that into
 * one place. Every bench now:
 *
 *   * parses the common flags (--kernel, --points, --threads,
 *     --backend, --analyzer, --csv, --no-csv, --list-kernels,
 *     --list-backends, --help);
 *   * gets a BenchContext holding a ready ExperimentEngine sized by
 *     --threads;
 *   * runs its sweeps through the engine (deterministic: --threads N
 *     prints byte-identical tables to --threads 1);
 *   * keeps only its experiment-specific analysis code.
 *
 * Sharding (benches with BenchCaps::shard): `--shard i/N` runs only
 * the i-th slice of the expanded (job, point) grid and writes a
 * fragment file (--shard-out) instead of the normal report;
 * `--cells lo-hi` does the same for an arbitrary range of linearized
 * grid cells (the unit the orchestrator deals out), streaming rows
 * into the fragment as job groups complete so the growing file
 * doubles as a progress heartbeat; `--merge f0,f1,...` reassembles
 * fragments and prints the report byte-identical to an unsharded
 * run. The split is deterministic (engine/shard.hpp), so a sweep
 * grid can be distributed across processes or hosts and merged
 * afterwards. `--jobs N` does the whole dance in one command: the
 * driver re-execs ITSELF as `--cells` workers under the
 * fault-tolerant work-queue coordinator (engine/orchestrator.hpp:
 * progress deadlines, capped-backoff retries, speculative
 * re-dispatch), merges their fragments, and prints the report —
 * byte-identical to the unsharded run.
 * `--curve-store DIR` points the two-tier CurveStore's disk tier at
 * DIR (equivalent to KB_CURVE_CACHE_DIR), letting shards and
 * repeated invocations share their single-pass curves and replayed
 * points; orchestrated workers inherit the flag automatically, and
 * the coordinator fscks the shared directory before the fleet
 * launches. `--store-fsck` runs that integrity scan standalone:
 * corrupt or misaddressed entries and crashed writers' temp files
 * are removed, valid entries untouched.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sweep.hpp"
#include "engine/engine.hpp"
#include "util/csv.hpp"

namespace kb {
namespace bench {

/**
 * Which of the shared flags a bench actually honors. Flags a bench
 * does not honor are rejected (exit 2) instead of silently ignored,
 * and dropped from its --help text.
 */
struct BenchCaps
{
    bool kernels = true;    ///< --kernel restricts its sweeps
    bool points = true;     ///< --points resizes its sweeps
    bool threads = true;    ///< --threads feeds its engine use
    bool perf_json = false; ///< --perf-json runs its perf-report mode
    /// --shard/--merge: the bench routes exactly one job batch
    /// through BenchContext::runJobs(), so its grid can be split
    /// across processes and its report reassembled.
    bool shard = false;
};

/** Options shared by every bench binary. */
struct DriverOptions
{
    /// --kernel: restrict multi-kernel benches to these registry
    /// names (repeatable flag, commas allowed). Empty = bench default.
    std::vector<std::string> kernels;
    unsigned points = 0;  ///< --points: sweep samples; 0 = bench default
    unsigned threads = 0; ///< --threads: engine workers; 0 = hardware
    /// --backend NAME[:THREADS]: trace-emission backend for every
    /// engine emission (see trace/backend.hpp). Empty = the
    /// KB_TRACE_BACKEND environment variable, or scalar. Output is
    /// byte-identical across backends; only the rendering changes.
    std::string backend;
    /// --analyzer scalar|simd: row-scan path of the set-associative
    /// analyzers (see trace/reuse.hpp). Empty = the KB_ANALYZER
    /// environment variable, or simd. Curves are bit-identical across
    /// paths; only the scan speed changes. Inherited by --jobs
    /// workers via self_args.
    std::string analyzer;
    std::string csv_path; ///< --csv: override the bench's CSV path
    bool no_csv = false;  ///< --no-csv: suppress CSV side outputs
    /// --perf-json: write the bench's machine-readable perf report
    /// here instead of running its normal tables (benches with
    /// BenchCaps::perf_json only).
    std::string perf_json;
    /// --shard i/N: run one slice of the sweep grid and write a
    /// fragment instead of the report (benches with BenchCaps::shard).
    std::string shard;
    /// --cells lo-hi: run one linearized cell range of the grid and
    /// stream a fragment (benches with BenchCaps::shard; the
    /// orchestrator's worker-side flag).
    std::string cells;
    /// --shard-out: fragment path (default shard_<i>_of_<N>.kbshard).
    std::string shard_out;
    /// --merge: fragment paths to reassemble into the full report
    /// (repeatable flag, commas allowed).
    std::vector<std::string> merge_paths;
    /// --jobs N: run the grid through the work-queue coordinator
    /// with N concurrent worker subprocesses of this very binary
    /// (benches with BenchCaps::shard; mutually exclusive with
    /// --shard/--cells/--merge; 0 or 1 = run inline).
    unsigned jobs = 0;
    /// --curve-store DIR: enable the CurveStore's on-disk tier at DIR.
    std::string curve_store_dir;
    /// --store-fsck: integrity-scan the store directory (removing
    /// corrupt entries and stale temps) and exit instead of running
    /// the bench.
    bool store_fsck = false;
    /// The invocation itself, for --jobs re-execs: argv[0] and every
    /// argument except --jobs (filled by runBench).
    std::string self_program;
    std::vector<std::string> self_args;
};

/** Per-run state handed to a bench body. */
class BenchContext
{
  public:
    BenchContext(DriverOptions opts, std::string experiment);

    const DriverOptions &options() const { return opts_; }
    const ExperimentEngine &engine() const { return engine_; }
    const std::string &experiment() const { return experiment_; }

    /** --points if given, else @p fallback. */
    unsigned points(unsigned fallback) const;

    /**
     * Kernel selection: --kernel names if given (validated against
     * the registry), else @p fallback, else every registered kernel.
     */
    std::vector<std::string>
    kernels(std::vector<std::string> fallback = {}) const;

    /** Measure one curve on the engine (kernel default range). */
    RatioCurve curve(const std::string &kernel,
                     unsigned fallback_points = 6) const;

    /** Run the experiment's declared SweepJobs, with --kernel and
     *  --points applied on top. Routed through runJobs(), so the
     *  declared grid shards and merges like any other batch. */
    std::vector<SweepResult> experimentSweeps() const;

    /**
     * Run one batch of jobs honoring the sharding flags. Without
     * --shard/--merge this is engine().run(jobs). With --merge it
     * reassembles the fragments into the full result (so the bench
     * body formats a report byte-identical to an unsharded run).
     * With --shard it measures only the owned grid slice, writes the
     * fragment, and unwinds out of the bench body (runBench catches
     * the unwind and exits 0) — a bench with BenchCaps::shard must
     * route its one job batch through here.
     */
    std::vector<SweepResult>
    runJobs(const std::vector<SweepJob> &jobs) const;

    /**
     * CSV writer honoring --csv/--no-csv: nullptr when suppressed,
     * otherwise opened at --csv's path or @p default_path. The bench
     * should mention the file in its stdout only via csvNote().
     */
    std::unique_ptr<CsvWriter>
    csv(const std::string &default_path,
        std::vector<std::string> headers) const;

    /** "(series written to X)" line, or "" when CSV is suppressed. */
    std::string csvNote(const std::string &default_path) const;

  private:
    DriverOptions opts_;
    std::string experiment_;
    ExperimentEngine engine_;
};

/**
 * Standard R(M) sweep table: columns M, Ccomp, Cio, R(M), plus an
 * optional shape column (e.g. R/sqrt(M)) computed per sample.
 */
void printCurveTable(
    std::ostream &os, const RatioCurve &curve,
    const char *shape_header = nullptr,
    const std::function<double(const RatioSample &)> &shape = nullptr);

/**
 * Bench entry point: parse flags, print the experiment banner (when
 * @p experiment is non-null), build the context, run @p body.
 * Returns the body's exit code, or 2 on a bad command line (including
 * a flag outside @p caps).
 */
int runBench(int argc, char **argv, const char *experiment,
             const std::function<int(BenchContext &)> &body,
             const BenchCaps &caps = {});

} // namespace bench
} // namespace kb
