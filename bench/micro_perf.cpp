/**
 * @file
 * Library micro-benchmarks (google-benchmark): throughput of the
 * simulation substrates. These are performance canaries for the
 * infrastructure, not paper results.
 */

#include <benchmark/benchmark.h>

#include "engine/curve_store.hpp"
#include "engine/engine.hpp"
#include "kernels/fft.hpp"
#include "kernels/matmul.hpp"
#include "mem/lru_cache.hpp"
#include "mem/opt_cache.hpp"
#include "kernels/registry.hpp"
#include "pebble/builders.hpp"
#include "pebble/heuristic.hpp"
#include "trace/backend.hpp"
#include "trace/pipeline.hpp"
#include "trace/replay.hpp"
#include "trace/reuse.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace {

using namespace kb;

void
BM_LruAccess(benchmark::State &state)
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(state.range(0));
    LruCache cache(capacity);
    Xoshiro256 rng(1);
    std::vector<std::uint64_t> addrs(1 << 14);
    for (auto &a : addrs)
        a = rng.below(4 * capacity);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & (addrs.size() - 1)], false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccess)->Arg(256)->Arg(4096);

void
BM_ReuseDistance(benchmark::State &state)
{
    Xoshiro256 rng(2);
    std::vector<std::uint64_t> addrs(1 << 14);
    for (auto &a : addrs)
        a = rng.below(1 << 12);
    for (auto _ : state) {
        ReuseDistanceAnalyzer rd;
        for (const auto a : addrs)
            rd.onAccess(readOf(a));
        benchmark::DoNotOptimize(rd.coldMisses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_ReuseDistance);

void
BM_ReuseDistanceColdRuns(benchmark::State &state)
{
    // First-touch runs take the bulk path: no distance queries, the
    // rank bitmap marked in whole words by setRun().
    const std::uint64_t words =
        static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        ReuseDistanceAnalyzer rd;
        rd.onRange(0, words, AccessType::Read);
        rd.onRange(words, words, AccessType::Write);
        benchmark::DoNotOptimize(rd.coldMisses());
    }
    state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_ReuseDistanceColdRuns)->Arg(1 << 12)->Arg(1 << 18);

void
BM_StackDistanceCurveMatmul(benchmark::State &state)
{
    // The fast-path unit: one emitTrace pass through the analyzer
    // yields Cio(M) for EVERY capacity (compare BM_SweepDirect /
    // BM_SweepFastPath for the end-to-end engine numbers).
    MatmulKernel k;
    for (auto _ : state) {
        ReuseDistanceAnalyzer rd;
        k.emitTrace(64, 256, rd);
        const auto curve = rd.missCurve();
        benchmark::DoNotOptimize(curve.ioWords(256));
    }
}
BENCHMARK(BM_StackDistanceCurveMatmul);

void
BM_OptSimulation(benchmark::State &state)
{
    Xoshiro256 rng(3);
    std::vector<Access> trace(1 << 14);
    for (auto &a : trace)
        a = readOf(rng.below(1 << 10));
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulateOpt(trace, 256));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OptSimulation);

void
BM_ReuseHierarchical(benchmark::State &state)
{
    // The blocked-count rank core on a tiled re-reference pattern:
    // every lap touches the same rows in a shuffled order, so each
    // row arrives as a warm run with consecutive previous-use stamps
    // (one rank query + bulk mark moves per row) while the shuffle
    // keeps the queries spread across the whole stamp hierarchy, and
    // laps drive the compaction cycle. Compare BM_ReuseDistance for
    // the word-at-a-time random shape.
    const std::uint64_t rows = 1 << 8;
    const std::uint64_t row_words = 1 << 6;
    Xoshiro256 rng(7);
    for (auto _ : state) {
        ReuseDistanceAnalyzer rd;
        std::vector<std::uint64_t> order(rows);
        for (std::uint64_t r = 0; r < rows; ++r)
            order[r] = r;
        for (int lap = 0; lap < 16; ++lap) {
            for (std::uint64_t r = rows; r-- > 1;)
                std::swap(order[r], order[rng.below(r + 1)]);
            for (std::uint64_t r = 0; r < rows; ++r)
                rd.onRun(order[r] * row_words, row_words,
                         AccessType::Read);
        }
        benchmark::DoNotOptimize(rd.accesses());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(16 * rows * row_words));
}
BENCHMARK(BM_ReuseHierarchical);

void
BM_MultiSetPass(benchmark::State &state)
{
    // One shared pass serving range(0) set counts at once — the
    // engine's one-emission-per-job set-assoc path. Arg(1) is the
    // old per-set-count cost for comparison.
    const auto planes = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint64_t> sets;
    for (std::size_t p = 0; p < planes; ++p)
        sets.push_back(1 + 3 * p);
    Xoshiro256 rng(5);
    std::vector<std::uint64_t> addrs(1 << 14);
    for (auto &a : addrs)
        a = rng.below(1 << 12);
    for (auto _ : state) {
        MultiSetReuseAnalyzer analyzer(sets, 8);
        for (std::size_t i = 0; i < addrs.size(); ++i)
            analyzer.onAccess(i % 5 == 0 ? writeOf(addrs[i])
                                         : readOf(addrs[i]));
        benchmark::DoNotOptimize(analyzer.accesses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_MultiSetPass)->Arg(1)->Arg(8);

void
BM_MultiSetRowScan(benchmark::State &state)
{
    // The row-scan core head to head: Arg(0) = the scalar oracle,
    // Arg(1) = the KB_SIMD path with its compressed recency-ordered
    // rows. Runs feed the bulk onRun path exactly as the production
    // sweep does; both paths produce bit-identical curves
    // (analyzer_diff_test), only the words/s differs.
    const auto path = state.range(0) == 0 ? AnalyzerPath::Scalar
                                          : AnalyzerPath::Simd;
    const std::vector<std::uint64_t> sets{6, 12, 21, 39, 72, 133,
                                          247, 512};
    Xoshiro256 rng(7);
    struct Run
    {
        std::uint64_t base;
        std::uint64_t words;
        bool write;
    };
    std::vector<Run> runs(1 << 10);
    for (auto &r : runs)
        r = {rng.below(1 << 14), 1 + rng.below(64),
             rng.below(4) == 0};
    std::uint64_t words = 0;
    for (const auto &r : runs)
        words += r.words;
    for (auto _ : state) {
        MultiSetReuseAnalyzer analyzer(sets, 8, path);
        for (const auto &r : runs)
            analyzer.onRun(r.base, r.words,
                           r.write ? AccessType::Write
                                   : AccessType::Read);
        benchmark::DoNotOptimize(analyzer.accesses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(words));
}
BENCHMARK(BM_MultiSetRowScan)->Arg(0)->Arg(1);

/**
 * Rank-query throughput over a realistic mid-trace bitmap: cold
 * streaks of set marks with gaps between them, queries spread across
 * the whole stamp hierarchy. Both paths return identical ranks
 * (MarkRankDiff asserts it); only the block-scan speed differs.
 */
void
markRankBenchmark(benchmark::State &state, AnalyzerPath path)
{
    const std::uint64_t domain = 1 << 18;
    MarkRank rank(path);
    rank.grow(domain);
    for (std::uint64_t base = 0; base + 384 <= domain; base += 512)
        rank.setRun(base, 384);
    Xoshiro256 rng(11);
    std::vector<std::uint64_t> queries(1 << 12);
    for (auto &q : queries)
        q = rng.below(domain);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        for (const auto q : queries)
            sum += rank.rankInc(q);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(queries.size()));
}

void
BM_MarkRankScalar(benchmark::State &state)
{
    markRankBenchmark(state, AnalyzerPath::Scalar);
}
BENCHMARK(BM_MarkRankScalar);

void
BM_MarkRankSimd(benchmark::State &state)
{
    markRankBenchmark(state, AnalyzerPath::Simd);
}
BENCHMARK(BM_MarkRankSimd);

void
BM_FusedPipeline(benchmark::State &state)
{
    // The fused unit end to end: one op stream rendered into the
    // chunk ring and fanned out to a single consumer carrying every
    // set-count plane plus the fused fully-assoc clock plane. Compare
    // BM_MultiSetRowScan(1) + BM_ReuseHierarchical run back to back
    // for the separate-pass cost this replaces.
    const std::vector<std::uint64_t> sets{6, 12, 21, 39, 72, 133,
                                          247, 512};
    Xoshiro256 rng(7);
    struct Run
    {
        std::uint64_t base;
        std::uint64_t words;
        bool write;
    };
    std::vector<Run> runs(1 << 10);
    for (auto &r : runs)
        r = {rng.below(1 << 14), 1 + rng.below(64),
             rng.below(4) == 0};
    std::uint64_t words = 0;
    for (const auto &r : runs)
        words += r.words;
    for (auto _ : state) {
        MultiSetReuseAnalyzer fused(sets, 8, AnalyzerPath::Simd,
                                    /*fuse_fully_assoc=*/true);
        AnalysisPipeline pipeline;
        pipeline.attach(fused);
        for (const auto &r : runs)
            pipeline.onRun(r.base, r.words,
                           r.write ? AccessType::Write
                                   : AccessType::Read);
        pipeline.flush();
        benchmark::DoNotOptimize(fused.accesses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(words));
}
BENCHMARK(BM_FusedPipeline);

void
BM_OptStreaming(benchmark::State &state)
{
    // The two-pass streaming OPT walk on BM_OptSimulation's exact
    // trace shape, for a direct buffered-vs-streaming comparison; a
    // small chunk forces real chunk-boundary crossings.
    Xoshiro256 rng(3);
    std::vector<Access> trace(1 << 14);
    for (auto &a : trace)
        a = readOf(rng.below(1 << 10));
    OptStreamOptions opts;
    opts.chunk_positions = 1 << 12;
    for (auto _ : state) {
        const auto curve = simulateOptCurveStreaming(
            [&](TraceSink &sink) {
                for (const auto &a : trace)
                    sink.onAccess(a);
            },
            {256}, opts);
        benchmark::DoNotOptimize(curve.missesAt(256));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OptStreaming);

void
BM_OptChunkPrefetch(benchmark::State &state)
{
    // Chunk readahead in the pass-2 walk: Arg(0) = synchronous chunk
    // loads, Arg(1) = double-buffered prefetch. A tiny spill budget
    // forces the disk path so the prefetch has real file reads to
    // overlap with the walk.
    Xoshiro256 rng(9);
    std::vector<Access> trace(1 << 15);
    for (auto &a : trace)
        a = rng.below(8) == 0 ? writeOf(rng.below(1 << 10))
                              : readOf(rng.below(1 << 10));
    OptStreamOptions opts;
    opts.chunk_positions = 1 << 11;
    opts.spill_threshold_bytes = 1 << 14;
    opts.prefetch = state.range(0) != 0;
    for (auto _ : state) {
        const auto curve = simulateOptCurveStreaming(
            [&](TraceSink &sink) {
                for (const auto &a : trace)
                    sink.onAccess(a);
            },
            {256}, opts);
        benchmark::DoNotOptimize(curve.missesAt(256));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OptChunkPrefetch)->Arg(0)->Arg(1);

void
BM_MatmulMeasure(benchmark::State &state)
{
    MatmulKernel k;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            k.measure(64, static_cast<std::uint64_t>(state.range(0)),
                      false));
    }
}
BENCHMARK(BM_MatmulMeasure)->Arg(64)->Arg(1024);

void
BM_FftMeasure(benchmark::State &state)
{
    FftKernel k;
    for (auto _ : state) {
        benchmark::DoNotOptimize(k.measure(1 << 12, 64, false));
    }
}
BENCHMARK(BM_FftMeasure);

void
BM_PebbleHeuristicFft(benchmark::State &state)
{
    const Dag dag = buildFftDag(64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(playHeuristic(dag, 16));
    }
}
BENCHMARK(BM_PebbleHeuristicFft);

void
BM_CountingSinkRuns(benchmark::State &state)
{
    // Bulk onRun path: counting a range must be O(1), not O(words).
    const std::uint64_t words =
        static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        CountingSink sink;
        sink.onRange(0, words, AccessType::Read);
        benchmark::DoNotOptimize(sink.total());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountingSinkRuns)->Arg(1 << 10)->Arg(1 << 20);

/**
 * Trace emission through a backend into a CountingSink, per opted-in
 * kernel: the scalar oracle vs the threaded tiled emitter. On a
 * 1-CPU container the pair documents parity (the ordered pipeline's
 * overhead); the speedup claim is the multi-core CI/host number.
 * items = words emitted, so the reported rate is words/s.
 */
void
emitBenchmark(benchmark::State &state, const char *kernel_name,
              const TraceBackend &backend)
{
    const auto kernel =
        KernelRegistry::instance().shared(kernel_name);
    std::uint64_t m_lo = 0, m_hi = 0;
    kernel->defaultSweepRange(m_lo, m_hi);
    const std::uint64_t m = std::min(m_hi, 4 * m_lo);
    const std::uint64_t n =
        kernel->regimeProblemSize(kernel->suggestProblemSize(m), m);
    std::uint64_t words = 0;
    for (auto _ : state) {
        CountingSink sink;
        backend.emit(*kernel, n, m, sink);
        words = sink.total();
        benchmark::DoNotOptimize(words);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(words));
}

void
BM_EmitScalar(benchmark::State &state, const char *kernel_name)
{
    const ScalarTraceBackend backend;
    emitBenchmark(state, kernel_name, backend);
}

void
BM_EmitThreaded(benchmark::State &state, const char *kernel_name)
{
    const ThreadedTraceBackend backend(0); // hardware threads
    emitBenchmark(state, kernel_name, backend);
}

BENCHMARK_CAPTURE(BM_EmitScalar, matmul, "matmul");
BENCHMARK_CAPTURE(BM_EmitThreaded, matmul, "matmul");
BENCHMARK_CAPTURE(BM_EmitScalar, stencil9, "stencil9");
BENCHMARK_CAPTURE(BM_EmitThreaded, stencil9, "stencil9");
BENCHMARK_CAPTURE(BM_EmitScalar, stencil9t, "stencil9t");
BENCHMARK_CAPTURE(BM_EmitThreaded, stencil9t, "stencil9t");
BENCHMARK_CAPTURE(BM_EmitScalar, matvec, "matvec");
BENCHMARK_CAPTURE(BM_EmitThreaded, matvec, "matvec");
BENCHMARK_CAPTURE(BM_EmitScalar, fft, "fft");
BENCHMARK_CAPTURE(BM_EmitThreaded, fft, "fft");

void
BM_StreamingReplayMatmul(benchmark::State &state)
{
    // Streaming emitTrace -> LRU (no intermediate trace vector).
    MatmulKernel k;
    for (auto _ : state) {
        LruCache lru(256);
        ReplaySink sink(lru);
        k.emitTrace(64, 256, sink);
        sink.flush();
        benchmark::DoNotOptimize(lru.stats().ioWords());
    }
}
BENCHMARK(BM_StreamingReplayMatmul);

/** LRU-only fixed-schedule sweep job shared by the A/B pair below. */
SweepJob
lruSweepJob(bool force_replay)
{
    SweepJob job;
    job.kernel = "matmul";
    job.m_lo = 48;
    job.m_hi = 1024;
    job.points = 8;
    job.models = {MemoryModelKind::Lru};
    job.schedule_m = 1024;
    job.models_only = true;
    job.force_replay = force_replay;
    return job;
}

void
BM_SweepDirect(benchmark::State &state)
{
    // Baseline: every point re-emits and re-replays the trace through
    // its own LruCache — O(points x trace).
    ExperimentEngine engine(1);
    const SweepJob job = lruSweepJob(/*force_replay=*/true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.runOne(job));
    }
}
BENCHMARK(BM_SweepDirect)->Unit(benchmark::kMillisecond);

void
BM_SweepFastPath(benchmark::State &state)
{
    // Stack-distance fast path, cold: one emission, whole curve —
    // O(trace log U + points). Bit-identical results to the direct
    // run above (asserted by the engine tests). The CurveStore's
    // tier 1 is cleared per iteration and its disk tier detached for
    // the duration (an ambient KB_CURVE_CACHE_DIR would serve the
    // "cold" runs), so this keeps measuring the single-pass
    // analyzer, not the store.
    auto &store = CurveStore::instance();
    const std::string ambient_dir = store.diskDirectory();
    store.setDiskDirectory("");
    ExperimentEngine engine(1);
    const SweepJob job = lruSweepJob(/*force_replay=*/false);
    for (auto _ : state) {
        store.clear();
        benchmark::DoNotOptimize(engine.runOne(job));
    }
    store.setDiskDirectory(ambient_dir);
}
BENCHMARK(BM_SweepFastPath)->Unit(benchmark::kMillisecond);

void
BM_SweepCached(benchmark::State &state)
{
    // Cache-hot repeat of the same job: curves served from the
    // CurveStore (tier 1), no emission at all (the repeated-sweep case the
    // cache exists for).
    ExperimentEngine engine(1);
    const SweepJob job = lruSweepJob(/*force_replay=*/false);
    CurveStore::instance().clear();
    benchmark::DoNotOptimize(engine.runOne(job)); // warm the cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.runOne(job));
    }
}
BENCHMARK(BM_SweepCached)->Unit(benchmark::kMicrosecond);

void
BM_EngineSweep(benchmark::State &state)
{
    // Multi-kernel sweep at 1 vs N threads (the tentpole speedup).
    const unsigned threads = static_cast<unsigned>(state.range(0));
    ExperimentEngine engine(threads);
    std::vector<SweepJob> jobs;
    for (const char *name : {"matmul", "triangularization", "fft",
                             "sorting", "matvec", "trisolve"}) {
        SweepJob job;
        job.kernel = name;
        job.points = 4;
        jobs.push_back(job);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(jobs));
    }
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace
