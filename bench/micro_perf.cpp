/**
 * @file
 * Library micro-benchmarks (google-benchmark): throughput of the
 * simulation substrates. These are performance canaries for the
 * infrastructure, not paper results.
 */

#include <benchmark/benchmark.h>

#include "kernels/fft.hpp"
#include "kernels/matmul.hpp"
#include "mem/lru_cache.hpp"
#include "mem/opt_cache.hpp"
#include "pebble/builders.hpp"
#include "pebble/heuristic.hpp"
#include "trace/reuse.hpp"
#include "util/rng.hpp"

namespace {

using namespace kb;

void
BM_LruAccess(benchmark::State &state)
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(state.range(0));
    LruCache cache(capacity);
    Xoshiro256 rng(1);
    std::vector<std::uint64_t> addrs(1 << 14);
    for (auto &a : addrs)
        a = rng.below(4 * capacity);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & (addrs.size() - 1)], false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccess)->Arg(256)->Arg(4096);

void
BM_ReuseDistance(benchmark::State &state)
{
    Xoshiro256 rng(2);
    std::vector<std::uint64_t> addrs(1 << 14);
    for (auto &a : addrs)
        a = rng.below(1 << 12);
    for (auto _ : state) {
        ReuseDistanceAnalyzer rd;
        for (const auto a : addrs)
            rd.onAccess(readOf(a));
        benchmark::DoNotOptimize(rd.coldMisses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_ReuseDistance);

void
BM_OptSimulation(benchmark::State &state)
{
    Xoshiro256 rng(3);
    std::vector<Access> trace(1 << 14);
    for (auto &a : trace)
        a = readOf(rng.below(1 << 10));
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulateOpt(trace, 256));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OptSimulation);

void
BM_MatmulMeasure(benchmark::State &state)
{
    MatmulKernel k;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            k.measure(64, static_cast<std::uint64_t>(state.range(0)),
                      false));
    }
}
BENCHMARK(BM_MatmulMeasure)->Arg(64)->Arg(1024);

void
BM_FftMeasure(benchmark::State &state)
{
    FftKernel k;
    for (auto _ : state) {
        benchmark::DoNotOptimize(k.measure(1 << 12, 64, false));
    }
}
BENCHMARK(BM_FftMeasure);

void
BM_PebbleHeuristicFft(benchmark::State &state)
{
    const Dag dag = buildFftDag(64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(playHeuristic(dag, 16));
    }
}
BENCHMARK(BM_PebbleHeuristicFft);

} // namespace
