#include "bench/driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "analysis/experiments.hpp"
#include "engine/curve_store.hpp"
#include "engine/orchestrator.hpp"
#include "engine/shard.hpp"
#include "kernels/registry.hpp"
#include "trace/backend.hpp"
#include "trace/reuse.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace kb {
namespace bench {

namespace {

/**
 * Thrown by runJobs() after a --shard run has written its fragment:
 * the bench body's report would be meaningless on a partial grid, so
 * the driver unwinds out of it and exits 0. Internal to the driver —
 * bench bodies just run runJobs() and never see it.
 */
struct ShardFragmentWritten
{
    std::string path;
};

void
printUsage(const char *prog, const char *experiment,
           const BenchCaps &caps)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "\n"
                 "%s%s"
                 "options:\n",
                 prog, experiment ? experiment : "",
                 experiment ? ": see analysis/experiments.hpp\n\n" : "");
    if (caps.kernels)
        std::fprintf(
            stderr,
            "  --kernel NAME[,NAME...]  restrict sweeps to these "
            "kernels\n"
            "                           (repeatable; see "
            "--list-kernels)\n");
    if (caps.points)
        std::fprintf(
            stderr,
            "  --points N               sweep samples per curve "
            "(>= 3)\n");
    if (caps.threads)
        std::fprintf(
            stderr,
            "  --threads N              engine worker threads (0 = "
            "all\n"
            "                           hardware threads; output is\n"
            "                           identical for every N)\n");
    std::fprintf(
        stderr,
        "  --backend NAME[:T]       trace-emission backend (see\n"
        "                           --list-backends); T = worker "
        "threads\n"
        "                           for parallel backends (default: "
        "the\n"
        "                           --threads value). Output is\n"
        "                           byte-identical for every backend\n"
        "  --analyzer PATH          set-associative row-scan path:\n"
        "                           scalar or simd (default: the\n"
        "                           KB_ANALYZER env var, else simd).\n"
        "                           Curves are bit-identical for\n"
        "                           every path\n");
    if (caps.perf_json)
        std::fprintf(
            stderr,
            "  --perf-json PATH         measure and write the perf "
            "report\n"
            "                           (JSON) instead of the normal "
            "tables\n");
    if (caps.shard)
        std::fprintf(
            stderr,
            "  --shard I/N              run slice I of the sweep grid "
            "and\n"
            "                           write a fragment (see "
            "--shard-out)\n"
            "  --cells LO-HI            run linearized grid cells "
            "[LO, HI)\n"
            "                           and stream a fragment (the\n"
            "                           orchestrator's worker flag)\n"
            "  --shard-out PATH         fragment path for "
            "--shard/--cells\n"
            "  --merge F0,F1,...        reassemble fragments and "
            "print the\n"
            "                           report (byte-identical to an\n"
            "                           unsharded run; repeatable)\n"
            "  --jobs N                 run the grid through the "
            "work-queue\n"
            "                           coordinator with N worker\n"
            "                           subprocesses of this binary "
            "(retries,\n"
            "                           progress deadlines; report\n"
            "                           byte-identical to the "
            "unsharded run)\n");
    std::fprintf(
        stderr,
        "  --curve-store DIR        persist single-pass curves in DIR\n"
        "                           (two-tier store; same as\n"
        "                           KB_CURVE_CACHE_DIR)\n"
        "  --store-fsck             integrity-scan the store "
        "directory,\n"
        "                           remove corrupt entries and stale\n"
        "                           temps, and exit\n"
        "  --csv PATH               write the bench's CSV series here\n"
        "  --no-csv                 suppress CSV side outputs\n"
        "  --list-kernels           print registered kernels and exit\n"
        "  --list-backends          print registered trace-emission\n"
        "                           backends and exit\n"
        "  --list-analyzers         print analyzer paths (with the\n"
        "                           resolved SIMD ISA) and exit\n"
        "  --help                   this text\n");
}

void
listKernels()
{
    const auto &registry = KernelRegistry::instance();
    for (const auto &name : registry.names()) {
        const auto kernel = registry.shared(name);
        std::printf("%-18s %s\n", name.c_str(),
                    kernel->description().c_str());
    }
}

void
listBackends()
{
    const auto &registry = TraceBackendRegistry::instance();
    for (const auto &name : registry.names())
        std::printf("%-18s %s\n", name.c_str(),
                    registry.describe(name).c_str());
}

void
listAnalyzers()
{
    std::printf("%-18s %s\n", analyzerPathName(AnalyzerPath::Scalar),
                "original per-word loops (the bit-exactness oracle)");
    std::printf("%-18s %s (resolved ISA: %s)\n",
                analyzerPathName(AnalyzerPath::Simd),
                "vectorized row scans, MarkRank block scans and the "
                "run-block shortcut",
                analyzerSimdIsa());
}

bool
splitCommaList(const std::string &arg, std::vector<std::string> &out)
{
    std::stringstream ss(arg);
    std::string item;
    bool any = false;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        out.push_back(item);
        any = true;
    }
    return any;
}

} // namespace

BenchContext::BenchContext(DriverOptions opts, std::string experiment)
    : opts_(std::move(opts)), experiment_(std::move(experiment)),
      engine_(opts_.threads)
{
}

unsigned
BenchContext::points(unsigned fallback) const
{
    return opts_.points != 0 ? opts_.points : fallback;
}

std::vector<std::string>
BenchContext::kernels(std::vector<std::string> fallback) const
{
    if (!opts_.kernels.empty())
        return opts_.kernels;
    if (!fallback.empty())
        return fallback;
    return KernelRegistry::instance().names();
}

RatioCurve
BenchContext::curve(const std::string &kernel,
                    unsigned fallback_points) const
{
    SweepJob job;
    job.kernel = kernel;
    job.points = points(fallback_points);
    return toRatioCurve(engine_.runOne(job));
}

std::vector<SweepResult>
BenchContext::runJobs(const std::vector<SweepJob> &jobs) const
{
    if (!opts_.merge_paths.empty()) {
        // Resolve the grid without measuring anything (a filter that
        // owns no cell), then fill it from the fragments.
        auto skeleton =
            engine_.run(jobs, [](std::size_t, std::size_t) {
                return false;
            });
        mergeShardFragments(skeleton, opts_.merge_paths);
        return skeleton;
    }
    if (opts_.jobs >= 2) {
        // One-command orchestration: re-exec this very invocation as
        // --cells workers under the work-queue coordinator (minus
        // --jobs), then merge their fragments exactly like --merge
        // would. Progress and failures go to stderr; stdout stays
        // byte-identical to an unsharded run.
        auto skeleton =
            engine_.run(jobs, [](std::size_t, std::size_t) {
                return false;
            });
        const std::size_t total = gridCellCount(skeleton);
        if (total == 0)
            return skeleton;
        // A corrupt entry in a shared store costs every worker a
        // reject-and-recompute; scrub the directory once up front.
        const std::string store_dir =
            CurveStore::instance().diskDirectory();
        if (!store_dir.empty()) {
            const CurveStoreFsck scrub = CurveStore::fsck(store_dir,
                                                          true);
            if (scrub.corrupt_removed != 0 || scrub.tmp_removed != 0)
                std::fprintf(stderr,
                             "curve store fsck: removed %zu corrupt "
                             "entries and %zu temp files from %s\n",
                             scrub.corrupt_removed, scrub.tmp_removed,
                             store_dir.c_str());
        }
        OrchestratorSpec spec;
        spec.program = opts_.self_program;
        spec.args = opts_.self_args;
        spec.jobs = opts_.jobs;
        spec.total_cells = total;
        spec.expect_signature = toHex16(sweepSignature(skeleton));
        std::fprintf(stderr,
                     "orchestrating %zu cells across %u workers of "
                     "%s\n",
                     total, opts_.jobs, spec.program.c_str());
        const auto run = orchestrateSweep(spec);
        KB_REQUIRE(run.ok, "orchestrated sweep failed: ", run.error);
        mergeShardFragments(skeleton, run.fragments);
        const auto &st = run.stats;
        std::fprintf(stderr,
                     "orchestrator: %zu slices, %zu dispatched "
                     "(%zu retried, %zu speculative), %zu deadline "
                     "kills, %zu fragments rejected, wall %.2fs, "
                     "busy %.2fs\n",
                     st.slices, st.dispatched, st.retried,
                     st.speculative, st.workers_killed,
                     st.fragments_rejected, st.wall_s, st.busy_s);
        removeOrchestratorScratch(run.scratch_dir);
        return skeleton;
    }
    if (!opts_.cells.empty()) {
        CellRange range;
        KB_REQUIRE(parseCellRange(opts_.cells, range),
                   "bad --cells value '", opts_.cells,
                   "' (expected LO-HI with LO < HI)");
        auto skeleton =
            engine_.run(jobs, [](std::size_t, std::size_t) {
                return false;
            });
        KB_REQUIRE(range.hi <= gridCellCount(skeleton), "--cells ",
                   opts_.cells, " is outside the ",
                   gridCellCount(skeleton), "-cell grid");
        const std::string path =
            !opts_.shard_out.empty()
                ? opts_.shard_out
                : "cells_" + std::to_string(range.lo) + "_" +
                      std::to_string(range.hi) + ".kbshard";
        CellFragmentWriter writer(path, sweepSignature(skeleton),
                                  skeleton.size());
        // Measure one job's owned cells per engine pass: a job's
        // points share their trace emission and single-pass curves,
        // and each finished group lands in the fragment right away —
        // the growing file is this worker's heartbeat.
        std::size_t lo_job = 0, lo_pt = 0, hi_job = 0, hi_pt = 0;
        cellCoordinates(skeleton, range.lo, lo_job, lo_pt);
        cellCoordinates(skeleton, range.hi - 1, hi_job, hi_pt);
        const auto in_range = cellRangeFilter(skeleton, range);
        for (std::size_t j = lo_job; j <= hi_job; ++j) {
            const auto group = engine_.run(
                jobs, [j, &in_range](std::size_t jj, std::size_t pp) {
                    return jj == j && in_range(jj, pp);
                });
            const std::size_t p_lo = j == lo_job ? lo_pt : 0;
            const std::size_t p_hi =
                j == hi_job ? hi_pt + 1 : skeleton[j].points.size();
            for (std::size_t p = p_lo; p < p_hi; ++p)
                writer.appendCell(j, p, group[j].points[p]);
        }
        writer.finish();
        throw ShardFragmentWritten{path};
    }
    if (!opts_.shard.empty()) {
        ShardSpec spec;
        KB_REQUIRE(parseShardSpec(opts_.shard, spec),
                   "bad --shard value '", opts_.shard,
                   "' (expected I/N with I < N)");
        auto results = engine_.run(jobs, shardFilter(spec));
        const std::string path =
            !opts_.shard_out.empty()
                ? opts_.shard_out
                : "shard_" + std::to_string(spec.index) + "_of_" +
                      std::to_string(spec.count) + ".kbshard";
        writeShardFragment(path, spec, results);
        throw ShardFragmentWritten{path};
    }
    return engine_.run(jobs);
}

std::vector<SweepResult>
BenchContext::experimentSweeps() const
{
    auto jobs = experimentById(experiment_).sweep_jobs;
    if (!opts_.kernels.empty()) {
        std::vector<SweepJob> filtered;
        for (const auto &job : jobs)
            for (const auto &want : opts_.kernels)
                if (job.kernel == want)
                    filtered.push_back(job);
        if (filtered.empty())
            warn("--kernel selected none of " + experiment_ +
                 "'s declared sweeps; its tables will be empty");
        jobs = std::move(filtered);
    }
    if (opts_.points != 0)
        for (auto &job : jobs)
            job.points = opts_.points;
    return runJobs(jobs);
}

std::unique_ptr<CsvWriter>
BenchContext::csv(const std::string &default_path,
                  std::vector<std::string> headers) const
{
    if (opts_.no_csv)
        return nullptr;
    const std::string &path =
        opts_.csv_path.empty() ? default_path : opts_.csv_path;
    return std::make_unique<CsvWriter>(path, std::move(headers));
}

std::string
BenchContext::csvNote(const std::string &default_path) const
{
    if (opts_.no_csv)
        return "";
    const std::string &path =
        opts_.csv_path.empty() ? default_path : opts_.csv_path;
    return "(series written to " + path + ")";
}

void
printCurveTable(std::ostream &os, const RatioCurve &curve,
                const char *shape_header,
                const std::function<double(const RatioSample &)> &shape)
{
    std::vector<std::string> headers = {"M (words)", "Ccomp", "Cio",
                                        "R(M)"};
    if (shape_header != nullptr)
        headers.push_back(shape_header);
    TextTable table(headers);
    for (const auto &s : curve.samples) {
        auto &row = table.row();
        row.cell(s.m).cell(s.comp_ops, 4).cell(s.io_words, 4).cell(
            s.ratio, 4);
        if (shape_header != nullptr)
            row.cell(shape ? shape(s) : 0.0, 3);
    }
    table.print(os);
}

int
runBench(int argc, char **argv, const char *experiment,
         const std::function<int(BenchContext &)> &body,
         const BenchCaps &caps)
{
    DriverOptions opts;
    const char *prog = argc > 0 ? argv[0] : "bench";
    auto unsupported = [&](const char *flag) {
        std::fprintf(stderr, "%s: this bench does not take %s\n", prog,
                     flag);
        return 2;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", prog,
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(prog, experiment, caps);
            return 0;
        } else if (arg == "--list-kernels") {
            listKernels();
            return 0;
        } else if (arg == "--list-backends") {
            listBackends();
            return 0;
        } else if (arg == "--list-analyzers") {
            listAnalyzers();
            return 0;
        } else if (arg == "--backend") {
            const char *v = value("--backend");
            if (v == nullptr)
                return 2;
            opts.backend = v;
        } else if (arg == "--analyzer") {
            const char *v = value("--analyzer");
            if (v == nullptr)
                return 2;
            opts.analyzer = v;
        } else if (arg == "--kernel") {
            if (!caps.kernels)
                return unsupported("--kernel");
            const char *v = value("--kernel");
            if (v == nullptr || !splitCommaList(v, opts.kernels)) {
                printUsage(prog, experiment, caps);
                return 2;
            }
        } else if (arg == "--points") {
            if (!caps.points)
                return unsupported("--points");
            const char *v = value("--points");
            if (v == nullptr)
                return 2;
            opts.points = static_cast<unsigned>(std::atoi(v));
            if (opts.points < 3) {
                std::fprintf(stderr, "%s: --points must be >= 3\n",
                             prog);
                return 2;
            }
        } else if (arg == "--threads") {
            if (!caps.threads)
                return unsupported("--threads");
            const char *v = value("--threads");
            if (v == nullptr)
                return 2;
            const int n = std::atoi(v);
            if (n < 0) {
                std::fprintf(stderr, "%s: --threads must be >= 0\n",
                             prog);
                return 2;
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (arg == "--perf-json") {
            if (!caps.perf_json)
                return unsupported("--perf-json");
            const char *v = value("--perf-json");
            if (v == nullptr)
                return 2;
            opts.perf_json = v;
        } else if (arg == "--shard") {
            if (!caps.shard)
                return unsupported("--shard");
            const char *v = value("--shard");
            if (v == nullptr)
                return 2;
            opts.shard = v;
            ShardSpec spec;
            if (!parseShardSpec(opts.shard, spec)) {
                std::fprintf(stderr,
                             "%s: --shard wants I/N with I < N, got "
                             "'%s'\n",
                             prog, v);
                return 2;
            }
        } else if (arg == "--cells") {
            if (!caps.shard)
                return unsupported("--cells");
            const char *v = value("--cells");
            if (v == nullptr)
                return 2;
            opts.cells = v;
            CellRange range;
            if (!parseCellRange(opts.cells, range)) {
                std::fprintf(stderr,
                             "%s: --cells wants LO-HI with LO < HI, "
                             "got '%s'\n",
                             prog, v);
                return 2;
            }
        } else if (arg == "--shard-out") {
            if (!caps.shard)
                return unsupported("--shard-out");
            const char *v = value("--shard-out");
            if (v == nullptr)
                return 2;
            opts.shard_out = v;
        } else if (arg == "--merge") {
            if (!caps.shard)
                return unsupported("--merge");
            const char *v = value("--merge");
            if (v == nullptr || !splitCommaList(v, opts.merge_paths)) {
                printUsage(prog, experiment, caps);
                return 2;
            }
        } else if (arg == "--jobs") {
            if (!caps.shard)
                return unsupported("--jobs");
            const char *v = value("--jobs");
            if (v == nullptr)
                return 2;
            const int n = std::atoi(v);
            if (n < 1) {
                std::fprintf(stderr, "%s: --jobs must be >= 1\n",
                             prog);
                return 2;
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--curve-store") {
            const char *v = value("--curve-store");
            if (v == nullptr)
                return 2;
            opts.curve_store_dir = v;
        } else if (arg == "--store-fsck") {
            opts.store_fsck = true;
        } else if (arg == "--csv") {
            const char *v = value("--csv");
            if (v == nullptr)
                return 2;
            opts.csv_path = v;
        } else if (arg == "--no-csv") {
            opts.no_csv = true;
        } else {
            std::fprintf(stderr, "%s: unknown option %s\n", prog,
                         arg.c_str());
            printUsage(prog, experiment, caps);
            return 2;
        }
    }

    // Validate --kernel names up front, against the registry.
    for (const auto &name : opts.kernels) {
        if (!KernelRegistry::instance().contains(name)) {
            std::fprintf(stderr,
                         "%s: unknown kernel '%s' (try --list-kernels)\n",
                         prog, name.c_str());
            return 2;
        }
    }
    // Validate and apply --backend: every engine emission in this
    // process (and in --jobs workers, which inherit the flag via
    // self_args) renders through it. A backend spec without an
    // explicit :T inherits the --threads value, so
    // `--backend threaded --threads 8` sizes both the engine and the
    // emitter.
    if (!opts.backend.empty()) {
        const std::string name =
            opts.backend.substr(0, opts.backend.find(':'));
        if (!TraceBackendRegistry::instance().contains(name)) {
            std::string valid;
            for (const auto &b :
                 TraceBackendRegistry::instance().names())
                valid += (valid.empty() ? "" : ", ") + b;
            std::fprintf(stderr,
                         "%s: unknown backend '%s' (valid: %s; try "
                         "--list-backends)\n",
                         prog, name.c_str(), valid.c_str());
            return 2;
        }
        setActiveTraceBackend(opts.backend, opts.threads);
    }
    // Validate and apply --analyzer: like --backend, the process-wide
    // default covers every analyzer this run constructs, and --jobs
    // workers inherit the flag via self_args.
    if (!opts.analyzer.empty()) {
        AnalyzerPath path;
        if (!parseAnalyzerPath(opts.analyzer, path)) {
            std::fprintf(stderr,
                         "%s: unknown analyzer path '%s' (valid: "
                         "scalar, simd; try --list-analyzers)\n",
                         prog, opts.analyzer.c_str());
            return 2;
        }
        setActiveAnalyzerPath(path);
    }
    {
        const int partitions = (!opts.shard.empty() ? 1 : 0) +
                               (!opts.cells.empty() ? 1 : 0) +
                               (!opts.merge_paths.empty() ? 1 : 0);
        if (partitions > 1) {
            std::fprintf(stderr,
                         "%s: --shard, --cells and --merge are "
                         "mutually exclusive\n",
                         prog);
            return 2;
        }
        if (opts.jobs != 0 && partitions != 0) {
            std::fprintf(stderr,
                         "%s: --jobs already shards and merges; it is "
                         "mutually exclusive with "
                         "--shard/--cells/--merge\n",
                         prog);
            return 2;
        }
    }
    // Record the invocation for --jobs re-execs: everything except
    // --jobs itself (children must not recurse into orchestration).
    opts.self_program = prog;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--jobs") {
            ++i; // skip its value too
            continue;
        }
        opts.self_args.push_back(argv[i]);
    }
    if (!opts.curve_store_dir.empty())
        CurveStore::instance().setDiskDirectory(opts.curve_store_dir);

    if (opts.store_fsck) {
        std::string dir = opts.curve_store_dir;
        if (dir.empty())
            if (const char *env = std::getenv("KB_CURVE_CACHE_DIR");
                env != nullptr)
                dir = env;
        if (dir.empty()) {
            std::fprintf(stderr,
                         "%s: --store-fsck needs --curve-store DIR "
                         "(or KB_CURVE_CACHE_DIR)\n",
                         prog);
            return 2;
        }
        const CurveStoreFsck report = CurveStore::fsck(dir, true);
        std::printf("curve store fsck of %s: %zu entries scanned, "
                    "%zu valid, %zu corrupt removed, %zu temp files "
                    "removed\n",
                    dir.c_str(), report.scanned, report.valid,
                    report.corrupt_removed, report.tmp_removed);
        return report.corrupt_found == report.corrupt_removed ? 0 : 1;
    }

    if (experiment != nullptr)
        printExperimentBanner(experiment);
    BenchContext ctx(std::move(opts),
                     experiment ? experiment : std::string());
    try {
        return body(ctx);
    } catch (const ShardFragmentWritten &done) {
        // Not an error: the body's report is replaced by the
        // fragment; the merge invocation prints the real report.
        std::fprintf(stderr, "shard fragment written to %s\n",
                     done.path.c_str());
        return 0;
    }
}

} // namespace bench
} // namespace kb
