/**
 * @file
 * E3 — Section 3.2: matrix triangularization (blocked LU).
 *
 * The paper's claim: each elimination step costs Theta(N^2 sqrt(M))
 * operations against Theta(N^2) I/O, so R(M) = Theta(sqrt(M)) and
 * the law matches matrix multiplication.
 */

#include <cmath>
#include <iostream>

#include "analysis/experiments.hpp"
#include "core/rebalance.hpp"
#include "kernels/lu.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace kb;
    printExperimentBanner("E3");

    LuKernel kernel;
    const std::uint64_t n = 320;

    TextTable sweep({"M (words)", "tile b", "Ccomp", "Cio", "R(M)",
                     "R/sqrt(M)"});
    std::vector<double> ms, ratios;
    for (std::uint64_t m = 48; m <= 12288; m *= 2) {
        const auto r = kernel.measure(n, m, false);
        const double ratio = r.cost.ratio();
        ms.push_back(static_cast<double>(m));
        ratios.push_back(ratio);
        sweep.row()
            .cell(m)
            .cell(LuKernel::tileSize(m))
            .cell(r.cost.comp_ops, 4)
            .cell(r.cost.io_words, 4)
            .cell(ratio, 4)
            .cell(ratio / std::sqrt(static_cast<double>(m)), 3);
    }
    printHeading(std::cout,
                 "R(M) sweep (N = 320, blocked Gaussian elimination)");
    sweep.print(std::cout);

    const auto fit = fitPowerLaw(ms, ratios);
    std::cout << "\nlog-log slope of R(M): " << fit.slope
              << "   (paper: 0.5)   r2 = " << fit.r2 << "\n";

    // Same-law check against matmul (paper: both alpha^2).
    const auto paper = rebalanceClosedForm(kernel.law(), 256, 2.0);
    std::cout << "alpha = 2 memory growth (paper law): "
              << paper.growth_factor << "x (same as matmul)\n";
    return 0;
}
