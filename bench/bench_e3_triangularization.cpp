/**
 * @file
 * E3 — Section 3.2: matrix triangularization (blocked LU).
 *
 * The paper's claim: each elimination step costs Theta(N^2 sqrt(M))
 * operations against Theta(N^2) I/O, so R(M) = Theta(sqrt(M)) and
 * the law matches matrix multiplication.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/lu.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E3", [](bench::BenchContext &ctx) {
        LuKernel kernel;

        SweepJob job;
        job.kernel = "triangularization";
        job.m_lo = 48;
        job.m_hi = 12288;
        job.points = ctx.points(9);
        const auto result = ctx.engine().runOne(job);
        const std::uint64_t n = result.n_hint;

        TextTable sweep({"M (words)", "tile b", "Ccomp", "Cio", "R(M)",
                         "R/sqrt(M)"});
        std::vector<double> ms, ratios;
        for (const auto &p : result.points) {
            const auto &s = p.sample;
            ms.push_back(static_cast<double>(s.m));
            ratios.push_back(s.ratio);
            sweep.row()
                .cell(s.m)
                .cell(LuKernel::tileSize(s.m))
                .cell(s.comp_ops, 4)
                .cell(s.io_words, 4)
                .cell(s.ratio, 4)
                .cell(s.ratio / std::sqrt(static_cast<double>(s.m)), 3);
        }
        printHeading(std::cout,
                     "R(M) sweep (N = " + std::to_string(n) +
                         ", blocked Gaussian elimination)");
        sweep.print(std::cout);

        const auto fit = fitPowerLaw(ms, ratios);
        std::cout << "\nlog-log slope of R(M): " << fit.slope
                  << "   (paper: 0.5)   r2 = " << fit.r2 << "\n";

        // Same-law check against matmul (paper: both alpha^2).
        const auto paper = rebalanceClosedForm(kernel.law(), 256, 2.0);
        std::cout << "alpha = 2 memory growth (paper law): "
                  << paper.growth_factor << "x (same as matmul)\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = true,
                         .threads = true});
}
