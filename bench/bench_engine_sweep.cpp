/**
 * @file
 * Engine bench: the full multi-kernel balance sweep on the parallel
 * experiment engine.
 *
 * This is the scaling canary for the engine layer. It measures every
 * registered kernel's R(M) curve (optionally restricted with
 * --kernel) as one batch of SweepJobs and prints the curves. Wall
 * time and worker count go to *stderr*, so stdout is byte-identical
 * for every --threads value — compare:
 *
 *   bench_engine_sweep --threads 1 > a.txt
 *   bench_engine_sweep --threads 8 > b.txt
 *   diff a.txt b.txt   # empty; stderr shows the speedup
 */

#include <chrono>
#include <iostream>

#include "bench/driver.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(
        argc, argv, nullptr, [](bench::BenchContext &ctx) {
            std::vector<SweepJob> jobs;
            for (const auto &name : ctx.kernels()) {
                SweepJob job;
                job.kernel = name;
                job.points = ctx.points(6);
                jobs.push_back(job);
            }

            const auto t0 = std::chrono::steady_clock::now();
            const auto results = ctx.engine().run(jobs);
            const auto t1 = std::chrono::steady_clock::now();
            const double seconds =
                std::chrono::duration<double>(t1 - t0).count();

            for (const auto &result : results) {
                const auto curve = toRatioCurve(result);
                printHeading(std::cout,
                             result.job.kernel + "  [m in " +
                                 std::to_string(result.job.m_lo) +
                                 ", " +
                                 std::to_string(result.job.m_hi) +
                                 "], n_hint = " +
                                 std::to_string(result.n_hint));
                bench::printCurveTable(std::cout, curve);
                std::cout << "\n";
            }

            std::cerr << "engine: " << results.size() << " jobs, "
                      << ctx.engine().threads() << " threads, "
                      << seconds << " s wall\n";
            return 0;
        });
}
