/**
 * @file
 * Engine bench: the full multi-kernel balance sweep on the parallel
 * experiment engine.
 *
 * This is the scaling canary for the engine layer. It measures every
 * registered kernel's R(M) curve (optionally restricted with
 * --kernel) as one batch of SweepJobs and prints the curves. Wall
 * time and worker count go to *stderr*, so stdout is byte-identical
 * for every --threads value — compare:
 *
 *   bench_engine_sweep --threads 1 > a.txt
 *   bench_engine_sweep --threads 8 > b.txt
 *   diff a.txt b.txt   # empty; stderr shows the speedup
 *
 * --shard I/N splits the batch's (job, point) grid across N
 * invocations and writes a fragment; --merge reassembles fragments
 * into the full report, byte-identical to the unsharded run; --jobs N
 * spawns, monitors and merges the N shard subprocesses itself (CI
 * diffs exactly that, cold and warm store). See engine/shard.hpp and
 * engine/orchestrator.hpp.
 *
 * --perf-json PATH switches to the perf-report mode: it A/B-measures
 * the stack-distance fast path against direct per-point replay on
 * fixed-schedule sweeps (the same job, force_replay toggled; results
 * are bit-identical, the engine tests assert it) — the historical
 * LRU-only sweep plus the set-associative-LRU, Belady-OPT and
 * combined ablation columns — plus raw trace-replay throughput, the
 * cache-hot re-run time of each fast job, and the two-tier curve
 * store's cold-disk vs warm-disk sweep times (a scratch directory
 * stands in for a shared cache dir; tier 1 is cleared between the
 * runs so the warm number is what a *fresh process* would pay) —
 * measured both for a fast-path job and for a pure *replay* job
 * (E12's tile-headroom shape), whose per-point results ride the
 * store's ModelCurve entries. An `emission` section times every
 * registered trace backend (trace/backend.hpp) rendering the job's
 * trace — each backend is parity-checked against the scalar totals
 * with a CountingSink before its words/s number is reported. An
 * `orchestrator` section times the
 * work-queue coordinator over a small two-kernel grid, fault-free
 * and with one worker SIGKILLed mid-slice, so coordination overhead
 * and recovery cost are part of the trajectory too. The
 * CurveStore is cleared before every cold measurement so the A/B
 * stays honest. CI stores the file as the BENCH_sweep.json artifact
 * so every PR leaves a perf trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>

#include <unistd.h>

#include "bench/driver.hpp"
#include "engine/curve_store.hpp"
#include "engine/orchestrator.hpp"
#include "engine/shard.hpp"
#include "kernels/registry.hpp"
#include "util/binio.hpp"
#include "util/faultpoint.hpp"
#include "mem/lru_cache.hpp"
#include "mem/opt_cache.hpp"
#include "trace/backend.hpp"
#include "trace/pipeline.hpp"
#include "trace/replay.hpp"
#include "trace/reuse.hpp"
#include "trace/sink.hpp"
#include "util/table.hpp"

namespace {

using namespace kb;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Wall time of one engine run of @p job. */
double
timedRun(const ExperimentEngine &engine, const SweepJob &job)
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = engine.runOne(job);
    (void)result;
    return secondsSince(t0);
}

/** One model family's fast-vs-replay A/B numbers. */
struct SweepAb
{
    double direct_s = 0.0;      ///< force_replay, curve cache cleared
    double fast_cold_s = 0.0;   ///< fast path, curve cache cleared
    double fast_cached_s = 0.0; ///< fast path again, cache hot
};

/**
 * A/B one fixed-schedule sweep: direct per-point replay vs the
 * single-pass fast path (cold and cache-hot). The cache is cleared
 * before each cold run so earlier measurements cannot subsidize
 * later ones.
 */
SweepAb
measureSweepAb(const ExperimentEngine &engine, const SweepJob &job)
{
    SweepJob direct_job = job;
    direct_job.force_replay = true;

    SweepAb ab;
    CurveStore::instance().clear();
    ab.direct_s = timedRun(engine, direct_job);
    CurveStore::instance().clear();
    ab.fast_cold_s = timedRun(engine, job);
    ab.fast_cached_s = timedRun(engine, job);
    return ab;
}

/** Cold-disk vs warm-disk (fresh-process) times of one job. */
struct StoreAb
{
    double disk_cold_s = 0.0; ///< empty disk dir, empty tier 1
    double disk_warm_s = 0.0; ///< warm disk dir, empty tier 1
    std::uint64_t warm_emissions = 0; ///< trace emissions of the warm run
    std::uint64_t cold_replay_stores = 0; ///< replayed points persisted
    std::uint64_t warm_replay_hits = 0;   ///< replayed points served warm
};

/**
 * Time the two-tier store: run @p job against an empty scratch
 * directory (cold: builds curves and persists them), then clear tier
 * 1 only and run again (warm: what a separate invocation pays —
 * curves come off disk, zero trace emissions). The store is restored
 * to its previous directory afterwards.
 */
StoreAb
measureStoreAb(const ExperimentEngine &engine, const SweepJob &job)
{
    auto &store = CurveStore::instance();
    const std::string previous_dir = store.diskDirectory();
    // Pid-suffixed scratch: concurrent perf runs on one host must
    // not clear each other's entries mid-measurement.
    const auto scratch =
        std::filesystem::temp_directory_path() /
        ("kb_curve_store_perf." +
         std::to_string(static_cast<unsigned long>(::getpid())));

    StoreAb ab;
    store.setDiskDirectory(scratch.string());
    store.clearDisk();
    store.clear();
    ab.disk_cold_s = timedRun(engine, job);
    ab.cold_replay_stores = store.stats().replay_stores;
    store.clear(); // tier 1 only: model a fresh process, warm disk
    const std::uint64_t emissions_before = engineEmissionCount();
    ab.disk_warm_s = timedRun(engine, job);
    ab.warm_emissions = engineEmissionCount() - emissions_before;
    ab.warm_replay_hits = store.stats().replay_hits;

    store.clearDisk();
    store.setDiskDirectory(previous_dir);
    store.clear();
    std::error_code ec;
    std::filesystem::remove(scratch, ec);
    return ab;
}

/**
 * Time the fault-tolerant work queue itself: orchestrate a small
 * two-kernel grid across 2 worker subprocesses of this very binary,
 * fault-free and then with the first worker SIGKILLed mid-slice
 * (KB_FAULT=kill-after-cells=1@worker=0), so the report pins both the
 * coordination overhead (wall vs summed worker busy time) and the
 * recovery cost of one lost worker. Returns false (refusing the
 * report) if either run fails to complete.
 */
bool
measureOrchestrator(const bench::BenchContext &ctx,
                    OrchestratorStats &clean, OrchestratorStats &faulted,
                    std::size_t &grid_cells, std::string &error)
{
    // The exact grid the re-execed workers will build from these
    // flags; its signature gates fragment acceptance.
    std::vector<SweepJob> jobs;
    for (const char *name : {"matmul", "fft"}) {
        SweepJob job;
        job.kernel = name;
        job.points = 3;
        jobs.push_back(job);
    }
    const ExperimentEngine serial(1);
    const auto skeleton = serial.run(
        jobs, [](std::size_t, std::size_t) { return false; });

    OrchestratorSpec spec;
    spec.program = ctx.options().self_program;
    spec.args = {"--points", "3", "--kernel", "matmul,fft",
                 "--threads", "1"};
    spec.jobs = 2;
    spec.total_cells = gridCellCount(skeleton);
    spec.expect_signature = toHex16(sweepSignature(skeleton));
    grid_cells = spec.total_cells;

    auto run = orchestrateSweep(spec);
    if (!run.ok) {
        error = run.error;
        return false;
    }
    clean = run.stats;
    removeOrchestratorScratch(run.scratch_dir);

    ::setenv("KB_FAULT", "kill-after-cells=1@worker=0", 1);
    faultReset();
    run = orchestrateSweep(spec);
    ::unsetenv("KB_FAULT");
    faultReset();
    if (!run.ok) {
        error = run.error;
        return false;
    }
    faulted = run.stats;
    removeOrchestratorScratch(run.scratch_dir);
    return true;
}

void
writeOrchestratorStatsJson(std::ostream &out, const char *indent,
                           const OrchestratorStats &s)
{
    out << indent << "\"slices\": " << s.slices << ",\n"
        << indent << "\"dispatched\": " << s.dispatched << ",\n"
        << indent << "\"retried\": " << s.retried << ",\n"
        << indent << "\"speculative\": " << s.speculative << ",\n"
        << indent << "\"workers_killed\": " << s.workers_killed << ",\n"
        << indent << "\"fragments_rejected\": " << s.fragments_rejected
        << ",\n"
        << indent << "\"wall_s\": " << s.wall_s << ",\n"
        << indent << "\"busy_s\": " << s.busy_s << "\n";
}

double
speedup(const SweepAb &ab)
{
    return ab.fast_cold_s > 0.0 ? ab.direct_s / ab.fast_cold_s : 0.0;
}

void
writeAbJson(std::ostream &out, const char *name,
            const std::vector<const char *> &models, unsigned points,
            const SweepAb &ab, bool trailing_comma)
{
    out << "  \"" << name << "\": {\n"
        << "    \"points\": " << points << ",\n"
        << "    \"models\": [";
    for (std::size_t i = 0; i < models.size(); ++i)
        out << (i ? ", " : "") << "\"" << models[i] << "\"";
    out << "],\n"
        << "    \"direct_replay_s\": " << ab.direct_s << ",\n"
        << "    \"fast_path_s\": " << ab.fast_cold_s << ",\n"
        << "    \"cached_fast_path_s\": " << ab.fast_cached_s << ",\n"
        << "    \"speedup\": " << speedup(ab) << "\n"
        << "  }" << (trailing_comma ? "," : "") << "\n";
}

int
writePerfReport(const bench::BenchContext &ctx, const std::string &path)
{
    const auto selected = ctx.kernels({"matmul"});
    if (selected.size() != 1) {
        std::cerr << "perf-json: the report measures exactly one "
                     "kernel; pass a single --kernel NAME\n";
        return 2;
    }
    // Fail on an unwritable path up front, before minutes of timed
    // sweeps run for nothing.
    std::ofstream out(path);
    if (!out) {
        std::cerr << "perf-json: cannot open " << path << "\n";
        return 1;
    }
    // Detach the disk tier for the whole report: clear() empties
    // tier 1 only, so an ambient KB_CURVE_CACHE_DIR (or a previous
    // sweep's entries) would otherwise serve the "cold" runs from
    // disk and fake the A/B numbers. measureStoreAb re-attaches a
    // scratch directory for the one section that measures the disk
    // tier on purpose.
    auto &curve_store = CurveStore::instance();
    const std::string ambient_store_dir = curve_store.diskDirectory();
    curve_store.setDiskDirectory("");
    const std::string kernel_name = selected.front();
    const auto kernel = KernelRegistry::instance().shared(kernel_name);
    std::uint64_t m_lo = 0, m_hi = 0;
    kernel->defaultSweepRange(m_lo, m_hi);
    const std::uint64_t schedule_m = m_hi;
    const std::uint64_t n_hint = kernel->suggestProblemSize(m_hi);
    const std::uint64_t n_trace =
        kernel->regimeProblemSize(n_hint, schedule_m);

    // --- raw trace-replay throughput on the fixed-schedule trace ---
    CountingSink counter;
    kernel->emitTrace(n_trace, schedule_m, counter);
    const std::uint64_t words = counter.total();

    auto t0 = std::chrono::steady_clock::now();
    NullSink null;
    kernel->emitTrace(n_trace, schedule_m, null);
    const double emit_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    LruCache lru(schedule_m);
    ReplaySink replay(lru);
    kernel->emitTrace(n_trace, schedule_m, replay);
    replay.flush();
    const double direct_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    ReuseDistanceAnalyzer analyzer;
    kernel->emitTrace(n_trace, schedule_m, analyzer);
    const auto curve = analyzer.missCurve();
    const double stack_s = secondsSince(t0);

    // Cross-check while we are here: the one-pass curve must agree
    // with the replay it is about to be benchmarked against.
    if (curve.ioWords(schedule_m) != lru.stats().ioWords()) {
        std::cerr << "perf-json: fast path diverged from direct "
                     "replay; refusing to report\n";
        return 1;
    }

    // --- emission backends A/B: every registered backend renders the
    // same fixed-schedule trace into a NullSink. Delivery is
    // byte-identical across backends (the diff tests), so this
    // isolates pure rendering cost; the CountingSink pass keeps the
    // report honest about it. On a 1-CPU host the threaded number
    // documents the ordered pipeline's overhead, not a speedup.
    struct EmissionTiming
    {
        std::string name;
        unsigned threads = 1;
        double s = 0.0;
    };
    std::vector<EmissionTiming> emission_timings;
    for (const auto &bname : TraceBackendRegistry::instance().names()) {
        const auto backend =
            TraceBackendRegistry::instance().make(bname, 0);
        CountingSink check;
        backend->emit(*kernel, n_trace, schedule_m, check);
        if (check.total() != words) {
            std::cerr << "perf-json: backend '" << bname
                      << "' delivered " << check.total()
                      << " words, scalar delivered " << words
                      << "; refusing to report\n";
            return 1;
        }
        EmissionTiming timing;
        timing.name = bname;
        if (const auto *threaded =
                dynamic_cast<const ThreadedTraceBackend *>(
                    backend.get()))
            timing.threads = threaded->threads();
        t0 = std::chrono::steady_clock::now();
        NullSink devnull;
        backend->emit(*kernel, n_trace, schedule_m, devnull);
        timing.s = secondsSince(t0);
        emission_timings.push_back(std::move(timing));
    }

    // --- end-to-end fixed-schedule sweeps, fast path vs replay ---
    SweepJob job;
    job.kernel = kernel_name;
    job.points = ctx.points(8);
    job.models = {MemoryModelKind::Lru};
    job.schedule_m = schedule_m;
    job.models_only = true;

    const ExperimentEngine serial(1);

    // --- the three analyzer paths vs their pre-PR-6 baselines ---
    // Probe the grid the engine would sweep: with no models the run
    // just materializes each point's capacity sample.
    SweepJob grid_probe = job;
    grid_probe.models = {};
    const auto grid_points = serial.runOne(grid_probe).points;
    std::vector<std::uint64_t> grid_m;
    std::vector<std::uint64_t> grid_sets;
    for (const auto &pt : grid_points) {
        grid_m.push_back(pt.sample.m);
        // Mirrors the engine's set-assoc convention: 8-way caches,
        // sets = max(ceil(m / 8), 1).
        const std::uint64_t sets =
            std::max<std::uint64_t>((pt.sample.m + 7) / 8, 1);
        if (std::find(grid_sets.begin(), grid_sets.end(), sets) ==
            grid_sets.end())
            grid_sets.push_back(sets);
    }

    // Multi-set: ONE emission covering every set count, vs one
    // emission per set count (what the engine paid before).
    t0 = std::chrono::steady_clock::now();
    MultiSetReuseAnalyzer multi(grid_sets, 8);
    kernel->emitTrace(n_trace, schedule_m, multi);
    std::uint64_t multi_io = 0;
    for (std::size_t p = 0; p < multi.planeCount(); ++p)
        multi_io += multi.waysCurve(p).ioWords(8);
    const double multi_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    std::uint64_t per_set_io = 0;
    for (const std::uint64_t sets : grid_sets) {
        SetAssocReuseAnalyzer one(sets, 8);
        kernel->emitTrace(n_trace, schedule_m, one);
        per_set_io += one.waysCurve().ioWords(8);
    }
    const double per_set_s = secondsSince(t0);
    if (multi_io != per_set_io) {
        std::cerr << "perf-json: multi-set pass diverged from "
                     "per-set passes; refusing to report\n";
        return 1;
    }

    // Per-path A/B of the same one-pass scan: the vectorized row
    // scan vs the scalar oracle, pinned explicitly so the report
    // carries both regardless of KB_ANALYZER / --analyzer.
    const auto timeMultiPath = [&](AnalyzerPath path,
                                   std::uint64_t &io) {
        const auto path_t0 = std::chrono::steady_clock::now();
        MultiSetReuseAnalyzer pinned(grid_sets, 8, path);
        kernel->emitTrace(n_trace, schedule_m, pinned);
        io = 0;
        for (std::size_t p = 0; p < pinned.planeCount(); ++p)
            io += pinned.waysCurve(p).ioWords(8);
        return secondsSince(path_t0);
    };
    std::uint64_t scalar_io = 0;
    std::uint64_t simd_io = 0;
    const double multi_scalar_s =
        timeMultiPath(AnalyzerPath::Scalar, scalar_io);
    const double multi_simd_s =
        timeMultiPath(AnalyzerPath::Simd, simd_io);
    if (scalar_io != multi_io || simd_io != multi_io) {
        std::cerr << "perf-json: analyzer paths diverged "
                     "(scalar/simd/active io mismatch); refusing to "
                     "report\n";
        return 1;
    }

    // The fully associative pass per analyzer path: Scalar is the
    // pre-fusion implementation verbatim (the only one earlier
    // revisions had), Simd adds the ISA rank scans and the run-block
    // shortcut.
    const auto timeFullyAssoc = [&](AnalyzerPath path,
                                    MissCurve &curve_out) {
        const auto path_t0 = std::chrono::steady_clock::now();
        ReuseDistanceAnalyzer fa(path);
        kernel->emitTrace(n_trace, schedule_m, fa);
        curve_out = fa.missCurve();
        return secondsSince(path_t0);
    };
    MissCurve fa_scalar_curve({}, 0, 0);
    MissCurve fa_simd_curve({}, 0, 0);
    const double fa_scalar_s =
        timeFullyAssoc(AnalyzerPath::Scalar, fa_scalar_curve);
    const double fa_simd_s =
        timeFullyAssoc(AnalyzerPath::Simd, fa_simd_curve);
    for (const std::uint64_t m : grid_m) {
        if (fa_scalar_curve.ioWords(m) != curve.ioWords(m) ||
            fa_simd_curve.ioWords(m) != curve.ioWords(m)) {
            std::cerr << "perf-json: fully-assoc analyzer paths "
                         "diverged; refusing to report\n";
            return 1;
        }
    }

    // --- the fused pipeline A/B: every Mattson curve of a cold
    // all-models sweep from ONE emission vs the separate passes
    // earlier revisions ran. Separate = the fully associative pass
    // (its pre-fusion scalar implementation) + the multi-set pass,
    // each walking its own emission. Fused = one emission through the
    // chunked pipeline into one consumer carrying the fully
    // associative plane inside the multi-set walk.
    const double fused_separate_s = fa_scalar_s + multi_simd_s;
    t0 = std::chrono::steady_clock::now();
    MultiSetReuseAnalyzer fused(grid_sets, 8, AnalyzerPath::Simd,
                                true);
    AnalysisPipeline fused_pipe;
    fused_pipe.attach(fused);
    kernel->emitTrace(n_trace, schedule_m, fused_pipe);
    fused_pipe.flush();
    std::uint64_t fused_sa_io = 0;
    for (std::size_t p = 0; p < fused.planeCount(); ++p)
        fused_sa_io += fused.waysCurve(p).ioWords(8);
    const MissCurve fused_fa_curve = fused.fullyAssocCurve();
    const double fused_pipeline_s = secondsSince(t0);
    if (fused_sa_io != multi_io) {
        std::cerr << "perf-json: fused pipeline diverged from the "
                     "separate multi-set pass; refusing to report\n";
        return 1;
    }
    for (const std::uint64_t m : grid_m) {
        if (fused_fa_curve.ioWords(m) != curve.ioWords(m)) {
            std::cerr << "perf-json: fused fully-assoc plane diverged "
                         "from the separate pass; refusing to "
                         "report\n";
            return 1;
        }
    }

    // OPT: the streaming two-pass walk (two emissions, no trace
    // buffer) vs buffering the trace and walking it in place.
    OptStreamStats opt_stats;
    t0 = std::chrono::steady_clock::now();
    const OptCurve opt_streamed = simulateOptCurveStreaming(
        [&](TraceSink &sink) {
            kernel->emitTrace(n_trace, schedule_m, sink);
        },
        grid_m, OptStreamOptions{}, &opt_stats);
    const double opt_stream_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    VectorSink trace_buffer;
    kernel->emitTrace(n_trace, schedule_m, trace_buffer);
    const OptCurve opt_buffered =
        simulateOptCurve(trace_buffer.trace(), grid_m);
    const double opt_buffered_s = secondsSince(t0);
    for (const std::uint64_t m : grid_m) {
        if (opt_streamed.ioWords(m) != opt_buffered.ioWords(m)) {
            std::cerr << "perf-json: streaming OPT diverged from the "
                         "buffered walk; refusing to report\n";
            return 1;
        }
    }

    const SweepAb lru_ab = measureSweepAb(serial, job);

    // Per-column A/B for the PR-3 fast paths, single-threaded, plus
    // the combined set-assoc + OPT ablation shape (what E12-style
    // studies pay for).
    SweepJob sa_job = job;
    sa_job.models = {MemoryModelKind::SetAssocLru};
    const SweepAb sa_ab = measureSweepAb(serial, sa_job);

    SweepJob opt_job = job;
    opt_job.models = {MemoryModelKind::Opt};
    const SweepAb opt_ab = measureSweepAb(serial, opt_job);

    SweepJob ablation_job = job;
    ablation_job.models = {MemoryModelKind::SetAssocLru,
                           MemoryModelKind::Opt};
    const SweepAb ablation_ab = measureSweepAb(serial, ablation_job);

    // The two-tier store: cold disk vs warm disk on the ablation
    // shape (the heaviest fast-path job in this report).
    const StoreAb store_ab = measureStoreAb(serial, ablation_job);

    // The replay path through the store: a tile-headroom job (E12's
    // shape) whose per-point schedules rule out the fast path — every
    // column is a real replay cold, and a pure store read warm.
    SweepJob replay_job = job;
    replay_job.models = {MemoryModelKind::SetAssocLru,
                         MemoryModelKind::SetAssocFifo,
                         MemoryModelKind::RandomRepl};
    replay_job.schedule_m = 0;
    replay_job.schedule_headroom = 2;
    const StoreAb replay_ab = measureStoreAb(serial, replay_job);

    // The work-queue coordinator, fault-free vs one killed worker.
    OrchestratorStats orch_clean;
    OrchestratorStats orch_faulted;
    std::size_t orch_cells = 0;
    std::string orch_error;
    if (!measureOrchestrator(ctx, orch_clean, orch_faulted, orch_cells,
                             orch_error)) {
        std::cerr << "perf-json: orchestrated sweep failed ("
                  << orch_error << "); refusing to report\n";
        return 1;
    }

    // The historical threads-N LRU numbers (pool scaling trajectory).
    const unsigned pool_threads = ctx.engine().threads();
    SweepJob direct_job = job;
    direct_job.force_replay = true;
    CurveStore::instance().clear();
    const double pool_direct_s = timedRun(ctx.engine(), direct_job);
    CurveStore::instance().clear();
    const double pool_fast_s = timedRun(ctx.engine(), job);
    curve_store.setDiskDirectory(ambient_store_dir);

    const auto rate = [words](double s) {
        return s > 0.0 ? static_cast<double>(words) / s : 0.0;
    };
    const char *kb_simd_env = std::getenv("KB_SIMD");
    out.precision(6);
    out << "{\n"
        << "  \"bench\": \"bench_engine_sweep\",\n"
        << "  \"kernel\": \"" << kernel_name << "\",\n"
        << "  \"schedule_m\": " << schedule_m << ",\n"
        << "  \"n_trace\": " << n_trace << ",\n"
        << "  \"trace_words\": " << words << ",\n"
        << "  \"host\": {\n"
        << "    \"cpus\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "    \"simd_isa\": \"" << analyzerSimdIsa() << "\",\n"
        << "    \"kb_simd\": \""
        << (kb_simd_env != nullptr && *kb_simd_env != '\0'
                ? kb_simd_env
                : "auto")
        << "\",\n"
        << "    \"analyzer_path\": \""
        << analyzerPathName(activeAnalyzerPath()) << "\"\n"
        << "  },\n"
        << "  \"replay\": {\n"
        << "    \"emit_only_s\": " << emit_s << ",\n"
        << "    \"emit_words_per_s\": " << rate(emit_s) << ",\n"
        << "    \"direct_lru_s\": " << direct_s << ",\n"
        << "    \"direct_lru_words_per_s\": " << rate(direct_s) << ",\n"
        << "    \"stack_distance_s\": " << stack_s << ",\n"
        << "    \"stack_distance_words_per_s\": " << rate(stack_s)
        << "\n"
        << "  },\n"
        << "  \"analyzer\": {\n"
        << "    \"fully_assoc_words_per_s\": " << rate(stack_s)
        << ",\n"
        << "    \"multi_set_counts\": " << grid_sets.size() << ",\n"
        << "    \"multi_set_one_pass_s\": " << multi_s << ",\n"
        << "    \"multi_set_one_pass_words_per_s\": "
        << rate(multi_s) << ",\n"
        << "    \"multi_set_one_pass_path\": \""
        << analyzerPathName(multi.path()) << "\",\n"
        << "    \"multi_set_scalar_s\": " << multi_scalar_s << ",\n"
        << "    \"multi_set_scalar_words_per_s\": "
        << rate(multi_scalar_s) << ",\n"
        << "    \"multi_set_simd_s\": " << multi_simd_s << ",\n"
        << "    \"multi_set_simd_words_per_s\": "
        << rate(multi_simd_s) << ",\n"
        << "    \"multi_set_simd_speedup\": "
        << (multi_simd_s > 0.0 ? multi_scalar_s / multi_simd_s : 0.0)
        << ",\n"
        << "    \"multi_set_per_set_passes_s\": " << per_set_s
        << ",\n"
        << "    \"multi_set_speedup\": "
        << (multi_s > 0.0 ? per_set_s / multi_s : 0.0) << ",\n"
        << "    \"fully_assoc_scalar_s\": " << fa_scalar_s << ",\n"
        << "    \"fully_assoc_simd_s\": " << fa_simd_s << ",\n"
        << "    \"fully_assoc_simd_speedup\": "
        << (fa_simd_s > 0.0 ? fa_scalar_s / fa_simd_s : 0.0) << ",\n"
        << "    \"fused_separate_passes_s\": " << fused_separate_s
        << ",\n"
        << "    \"fused_pipeline_s\": " << fused_pipeline_s << ",\n"
        << "    \"fused_pipeline_words_per_s\": "
        << rate(fused_pipeline_s) << ",\n"
        << "    \"fused_speedup\": "
        << (fused_pipeline_s > 0.0
                ? fused_separate_s / fused_pipeline_s
                : 0.0)
        << ",\n"
        << "    \"fused_chunks\": " << fused_pipe.chunksDelivered()
        << ",\n"
        << "    \"opt_streaming_s\": " << opt_stream_s << ",\n"
        << "    \"opt_streaming_words_per_s\": "
        << rate(opt_stream_s) << ",\n"
        << "    \"opt_buffered_s\": " << opt_buffered_s << ",\n"
        << "    \"opt_streaming_peak_resident_bytes\": "
        << opt_stats.peak_resident_bytes << ",\n"
        << "    \"opt_streaming_spilled_bytes\": "
        << opt_stats.spilled_bytes << "\n"
        << "  },\n"
        << "  \"sweep\": {\n"
        << "    \"points\": " << job.points << ",\n"
        << "    \"models\": [\"lru\"],\n"
        << "    \"threads_1\": {\n"
        << "      \"direct_replay_s\": " << lru_ab.direct_s << ",\n"
        << "      \"fast_path_s\": " << lru_ab.fast_cold_s << ",\n"
        << "      \"cached_fast_path_s\": " << lru_ab.fast_cached_s
        << ",\n"
        << "      \"speedup\": " << speedup(lru_ab) << "\n"
        << "    },\n"
        << "    \"threads_n\": {\n"
        << "      \"threads\": " << pool_threads << ",\n"
        << "      \"direct_replay_s\": " << pool_direct_s << ",\n"
        << "      \"fast_path_s\": " << pool_fast_s << ",\n"
        << "      \"speedup\": "
        << (pool_fast_s > 0.0 ? pool_direct_s / pool_fast_s : 0.0)
        << "\n"
        << "    }\n"
        << "  },\n";
    writeAbJson(out, "setassoc_sweep", {"8way-lru"}, job.points, sa_ab,
                true);
    writeAbJson(out, "opt_sweep", {"opt"}, job.points, opt_ab, true);
    writeAbJson(out, "ablation_sweep", {"8way-lru", "opt"}, job.points,
                ablation_ab, true);
    out << "  \"curve_store\": {\n"
        << "    \"format_version\": " << CurveStore::kFormatVersion
        << ",\n"
        << "    \"job\": \"ablation_sweep\",\n"
        << "    \"disk_cold_s\": " << store_ab.disk_cold_s << ",\n"
        << "    \"disk_warm_s\": " << store_ab.disk_warm_s << ",\n"
        << "    \"warm_trace_emissions\": " << store_ab.warm_emissions
        << ",\n"
        << "    \"warm_speedup\": "
        << (store_ab.disk_warm_s > 0.0
                ? store_ab.disk_cold_s / store_ab.disk_warm_s
                : 0.0)
        << "\n"
        << "  },\n"
        << "  \"replay_store\": {\n"
        << "    \"job\": \"headroom_replay_sweep\",\n"
        << "    \"models\": [\"8way-lru\", \"8way-fifo\", "
           "\"random\"],\n"
        << "    \"points\": " << replay_job.points << ",\n"
        << "    \"disk_cold_s\": " << replay_ab.disk_cold_s << ",\n"
        << "    \"disk_warm_s\": " << replay_ab.disk_warm_s << ",\n"
        << "    \"warm_trace_emissions\": "
        << replay_ab.warm_emissions << ",\n"
        << "    \"cold_replay_stores\": "
        << replay_ab.cold_replay_stores << ",\n"
        << "    \"warm_replay_hits\": " << replay_ab.warm_replay_hits
        << ",\n"
        << "    \"warm_speedup\": "
        << (replay_ab.disk_warm_s > 0.0
                ? replay_ab.disk_cold_s / replay_ab.disk_warm_s
                : 0.0)
        << "\n"
        << "  },\n"
        << "  \"emission\": {\n"
        << "    \"trace_words\": " << words << ",\n"
        << "    \"backends\": {\n";
    for (std::size_t b = 0; b < emission_timings.size(); ++b) {
        const auto &timing = emission_timings[b];
        out << "      \"" << timing.name << "\": {\n"
            << "        \"threads\": " << timing.threads << ",\n"
            << "        \"emit_s\": " << timing.s << ",\n"
            << "        \"words_per_s\": " << rate(timing.s) << "\n"
            << "      }" << (b + 1 < emission_timings.size() ? "," : "")
            << "\n";
    }
    out << "    }\n"
        << "  },\n"
        << "  \"orchestrator\": {\n"
        << "    \"workers\": 2,\n"
        << "    \"grid_cells\": " << orch_cells << ",\n"
        << "    \"clean\": {\n";
    writeOrchestratorStatsJson(out, "      ", orch_clean);
    out << "    },\n"
        << "    \"injected_fault\": "
           "\"kill-after-cells=1@worker=0\",\n"
        << "    \"faulted\": {\n";
    writeOrchestratorStatsJson(out, "      ", orch_faulted);
    out << "    },\n"
        << "    \"recovery_overhead\": "
        << (orch_clean.wall_s > 0.0
                ? orch_faulted.wall_s / orch_clean.wall_s
                : 0.0)
        << "\n"
        << "  }\n"
        << "}\n";
    std::cerr << "perf: " << words << " trace words; 1-thread sweeps of "
              << job.points << " pts (direct / fast / cached, speedup):"
              << "\n  lru      " << lru_ab.direct_s << " / "
              << lru_ab.fast_cold_s << " / " << lru_ab.fast_cached_s
              << " s (" << speedup(lru_ab) << "x)"
              << "\n  8way-lru " << sa_ab.direct_s << " / "
              << sa_ab.fast_cold_s << " / " << sa_ab.fast_cached_s
              << " s (" << speedup(sa_ab) << "x)"
              << "\n  opt      " << opt_ab.direct_s << " / "
              << opt_ab.fast_cold_s << " / " << opt_ab.fast_cached_s
              << " s (" << speedup(opt_ab) << "x)"
              << "\n  ablation " << ablation_ab.direct_s << " / "
              << ablation_ab.fast_cold_s << " / "
              << ablation_ab.fast_cached_s << " s ("
              << speedup(ablation_ab) << "x)"
              << "\nanalyzer: fully-assoc " << rate(stack_s)
              << " w/s, multi-set one-pass " << rate(multi_s)
              << " w/s ("
              << (multi_s > 0.0 ? per_set_s / multi_s : 0.0)
              << "x vs per-set), streaming OPT " << rate(opt_stream_s)
              << " w/s"
              << "\nfused pipeline (all Mattson curves, one emission): "
              << fused_pipeline_s << " s vs " << fused_separate_s
              << " s separate passes ("
              << (fused_pipeline_s > 0.0
                      ? fused_separate_s / fused_pipeline_s
                      : 0.0)
              << "x); fully-assoc simd "
              << (fa_simd_s > 0.0 ? fa_scalar_s / fa_simd_s : 0.0)
              << "x vs scalar"
              << "\ncurve store (ablation job): disk-cold "
              << store_ab.disk_cold_s << " s, disk-warm "
              << store_ab.disk_warm_s << " s, warm emissions "
              << store_ab.warm_emissions
              << "\nreplay store (headroom job): disk-cold "
              << replay_ab.disk_cold_s << " s, disk-warm "
              << replay_ab.disk_warm_s << " s, warm emissions "
              << replay_ab.warm_emissions << ", warm replay hits "
              << replay_ab.warm_replay_hits
              << "\norchestrator (2 workers, " << orch_cells
              << " cells): clean " << orch_clean.wall_s
              << " s wall / " << orch_clean.busy_s
              << " s busy; 1 worker killed -> " << orch_faulted.wall_s
              << " s wall, " << orch_faulted.retried << " retried ("
              << (orch_clean.wall_s > 0.0
                      ? orch_faulted.wall_s / orch_clean.wall_s
                      : 0.0)
              << "x overhead)"
              << "\nreport written to " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(
        argc, argv, nullptr,
        [](bench::BenchContext &ctx) {
            if (!ctx.options().perf_json.empty()) {
                // The perf report times a fixed A/B grid of its own;
                // silently ignoring sharding flags would leave the
                // caller waiting for a fragment that never appears.
                if (!ctx.options().shard.empty() ||
                    !ctx.options().merge_paths.empty()) {
                    std::cerr << "perf-json: --shard/--merge do not "
                                 "apply to the perf report\n";
                    return 2;
                }
                return writePerfReport(ctx, ctx.options().perf_json);
            }

            std::vector<SweepJob> jobs;
            for (const auto &name : ctx.kernels()) {
                SweepJob job;
                job.kernel = name;
                job.points = ctx.points(6);
                jobs.push_back(job);
            }

            const auto t0 = std::chrono::steady_clock::now();
            const auto results = ctx.runJobs(jobs);
            const auto t1 = std::chrono::steady_clock::now();
            const double seconds =
                std::chrono::duration<double>(t1 - t0).count();

            for (const auto &result : results) {
                const auto curve = toRatioCurve(result);
                printHeading(std::cout,
                             result.job.kernel + "  [m in " +
                                 std::to_string(result.job.m_lo) +
                                 ", " +
                                 std::to_string(result.job.m_hi) +
                                 "], n_hint = " +
                                 std::to_string(result.n_hint));
                bench::printCurveTable(std::cout, curve);
                std::cout << "\n";
            }

            std::cerr << "engine: " << results.size() << " jobs, "
                      << ctx.engine().threads() << " threads, "
                      << seconds << " s wall\n";
            return 0;
        },
        bench::BenchCaps{.kernels = true, .points = true,
                         .threads = true, .perf_json = true,
                         .shard = true});
}
