/**
 * @file
 * E11 — Section 5: the CMU Warp machine design point.
 *
 * "With a local memory of up to 64K 32-bit words, each PE can perform
 * 10 million 32-bit floating-point operations per second, and
 * transfer 20 million words per second... Having a rather large I/O
 * bandwidth and a relatively large local memory for each PE of the
 * Warp machine reflects the results of this paper."
 *
 * We check each kernel against the Warp cell and against 10-cell
 * Warp arrays, and show what C/IO growth the 64K memory can absorb.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "core/balance.hpp"
#include "core/rebalance.hpp"
#include "kernels/kernel.hpp"
#include "parallel/aggregate.hpp"
#include "parallel/warp.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E11",
                           [](bench::BenchContext &) {

        const PeConfig cell = warpCellPe();
        std::cout << "Warp cell: C = " << cell.comp_bandwidth / 1e6
                  << " MFLOPS, IO = " << cell.io_bandwidth / 1e6
                  << " Mwords/s, M = " << cell.memory_words
                  << " words  (C/IO = " << cell.compIoRatio() << ")\n";

        // Required memory for balance per kernel: M with R(M) = C/IO.
        TextTable single({"kernel", "R(64K words)", "needed C/IO <= R?",
                          "balance state on one cell"});
        for (const auto id : allKernelIds()) {
            const auto k = makeKernel(id);
            const double r_at_warp =
                k->asymptoticRatio(cell.memory_words);
            const std::uint64_t n = k->suggestProblemSize(4096);
            const auto w = k->analyticCosts(n, cell.memory_words);
            const auto rep = checkBalance(cell, w, 0.02);
            single.row()
                .cell(k->name())
                .cell(r_at_warp, 4)
                .cell(r_at_warp >= cell.compIoRatio())
                .cell(balanceStateName(rep.state));
        }
        printHeading(std::cout,
                     "One Warp cell (C/IO = 0.5): every compute-bound "
                     "kernel is comfortably compute-limited");
        single.print(std::cout);

        // The 10-cell array: alpha = 10 against a single cell.
        const auto spec = warpArray(10);
        const auto agg = aggregatePe(spec);
        std::cout << "\n10-cell Warp array as one PE: C = "
                  << agg.comp_bandwidth / 1e6
                  << " MFLOPS, boundary IO = " << agg.io_bandwidth / 1e6
                  << " Mwords/s, alpha = " << aggregateAlpha(spec) << "\n";

        TextTable array({"kernel", "law", "per-PE memory needed",
                         "fits in 64K?"});
        for (const auto id : computeBoundKernelIds()) {
            const auto k = makeKernel(id);
            // Single cell balances at R(M0) = C/IO = 0.5; every kernel
            // satisfies that at tiny M0 — take M0 = 64 words as the
            // baseline tile and apply the law with alpha = 10.
            const auto per_pe =
                requiredPerPeMemory(k->law(), spec, 64);
            array.row()
                .cell(k->name())
                .cell(k->law().describe())
                .cell(per_pe ? *per_pe : -1.0, 5)
                .cell(per_pe && *per_pe <=
                                    static_cast<double>(
                                        kWarpCellMemoryWords));
        }
        printHeading(std::cout,
                     "10-cell array, alpha = 10: per-PE memory demanded "
                     "by each law (baseline M0 = 64 words)");
        array.print(std::cout);
        std::cout
            << "\nThe 64K-word cells absorb alpha = 10 easily for the "
               "polynomial laws — \"having a rather large I/O bandwidth "
               "and a relatively large local memory ... reflects the "
               "results of this paper.\"\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = false,
                         .threads = false});
}
