/**
 * @file
 * E4 — Section 3.3: grid computations of dimension d = 1..4.
 *
 * Paper claim: R(M) = Theta(M^(1/d)), hence M_new = alpha^d M_old.
 * Measured two ways: the paper's own resident-subgrid accounting
 * (halo-only I/O, steady state, run as one engine batch across all
 * four dimensions) and the executable single-PE trapezoidal time
 * tiling.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/grid.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E4", [](bench::BenchContext &ctx) {
        // Part 1: resident-subgrid (the paper's Section 3.3
        // accounting), all four dimensions as one engine batch.
        const auto results = ctx.experimentSweeps();

        auto csv = ctx.csv("e4_grid_ratio.csv",
                           {"d", "m_words", "ratio"});
        TextTable resident({"d", "fit exponent of R(M)", "paper (1/d)",
                            "r2", "law check alpha=2"});
        for (const auto &result : results) {
            // "grid3d" -> 3
            const unsigned d =
                static_cast<unsigned>(result.job.kernel[4] - '0');
            const auto curve = toRatioCurve(result);
            if (csv) {
                for (const auto &sample : curve.samples)
                    csv->writeRow({std::to_string(d),
                                   std::to_string(sample.m),
                                   std::to_string(sample.ratio)});
            }
            const auto fit =
                fitPowerLaw(curve.memories(), curve.ratios());
            const auto law = GridKernel(d).law();
            const auto re = rebalanceClosedForm(law, 4096, 2.0);
            resident.row()
                .cell(static_cast<int>(d))
                .cell(fit.slope, 3)
                .cell(1.0 / d, 3)
                .cell(fit.r2, 4)
                .cell("M x " + std::to_string(re.growth_factor)
                                   .substr(0, 5));
        }
        printHeading(std::cout,
                     "Resident subgrid (paper's model): R(M) exponent");
        resident.print(std::cout);
        const auto note = ctx.csvNote("e4_grid_ratio.csv");
        if (!note.empty())
            std::cout << note << "\n";

        // Part 2: executable trapezoidal tiling for d = 1, 2 (single
        // PE, N >> M; higher d needs bigger-than-laptop blocks to
        // leave the halo-dominated regime — see EXPERIMENTS.md).
        TextTable trap({"d", "M", "tau", "R(M) measured", "verified"});
        for (unsigned d = 1; d <= 2; ++d) {
            const std::uint64_t iters = d == 1 ? 256 : 64;
            GridKernel k(d, iters);
            const std::uint64_t g = d == 1 ? 4096 : 160;
            for (std::uint64_t m = d == 1 ? 64 : 128;
                 m <= (d == 1 ? 1024u : 8192u); m *= 4) {
                const auto r = k.measure(g, m, true);
                trap.row()
                    .cell(static_cast<int>(d))
                    .cell(m)
                    .cell(k.temporalDepth(m))
                    .cell(r.cost.ratio(), 4)
                    .cell(r.verified);
            }
        }
        printHeading(std::cout,
                     "Trapezoidal time tiling (executable single-PE "
                     "schedule)");
        trap.print(std::cout);

        // The ordering consequence: alpha^d for fixed alpha.
        TextTable growth({"alpha", "d=1", "d=2", "d=3", "d=4"});
        for (double alpha : {2.0, 3.0, 4.0}) {
            auto &row = growth.row();
            row.cell(alpha, 3);
            for (unsigned d = 1; d <= 4; ++d) {
                const auto re = rebalanceClosedForm(
                    ScalingLaw::power(static_cast<double>(d)), 1024,
                    alpha);
                row.cell(re.growth_factor, 5);
            }
        }
        printHeading(std::cout, "Memory growth factor alpha^d");
        growth.print(std::cout);
        return 0;
    });
}
