/**
 * @file
 * E7 — Section 3.6: I/O-bounded computations.
 *
 * Matrix-vector multiplication and triangular solve read their data
 * once and reuse nothing, so R(M) is bounded by a constant (2): no
 * memory size rebalances a PE whose C/IO grew by alpha >= 2. The
 * three flat curves run as one engine batch. A closing table sweeps
 * the stencil9/stencil9t plug-in pair — the same Moore stencil
 * single-swept (flat, I/O-bounded) and time-tiled (R ~ sqrt(M)) —
 * to show Section 3.6 membership is decided by the schedule.
 */

#include <cmath>
#include <iostream>

#include "analysis/classify.hpp"
#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/matvec.hpp"
#include "kernels/trisolve.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E7", [](bench::BenchContext &ctx) {
        // One job per I/O-bounded kernel, same grid for all three.
        std::vector<SweepJob> jobs;
        for (const char *name : {"matvec", "trisolve", "spmv"}) {
            SweepJob job;
            job.kernel = name;
            job.m_lo = 8;
            job.m_hi = 32768;
            job.points = ctx.points(7);
            jobs.push_back(job);
        }
        const auto results = ctx.engine().run(jobs);
        const auto &mv = results[0], &ts = results[1], &sp = results[2];

        TextTable sweep({"M", "matvec R(M)", "trisolve R(M)",
                         "spmv R(M)"});
        const std::size_t rows = std::min(
            {mv.points.size(), ts.points.size(), sp.points.size()});
        for (std::size_t i = 0; i < rows; ++i) {
            sweep.row()
                .cell(mv.points[i].sample.m)
                .cell(mv.points[i].sample.ratio, 5)
                .cell(ts.points[i].sample.ratio, 5)
                .cell(sp.points[i].sample.ratio, 5);
        }
        printHeading(std::cout,
                     "R(M) is flat: a 4096x memory increase buys "
                     "almost nothing");
        sweep.print(std::cout);
        // The engine picks each kernel's own regime size.
        std::cout << "(N: matvec " << mv.n_hint << ", trisolve "
                  << ts.n_hint << ", spmv " << sp.n_hint << ")\n";

        const auto mv_fit = fitPowerLaw(mv.memories(), mv.ratios());
        const auto ts_fit = fitPowerLaw(ts.memories(), ts.ratios());
        std::cout << "\nlog-log slopes: matvec " << mv_fit.slope
                  << ", trisolve " << ts_fit.slope
                  << " (paper: 0 — no memory law exists)\n";

        const auto mv_law =
            classifyRatioCurve(mv.memories(), mv.ratios());
        const auto ts_law =
            classifyRatioCurve(ts.memories(), ts.ratios());
        std::cout << "classified: matvec -> " << mv_law.describe()
                  << "\n            trisolve -> " << ts_law.describe()
                  << "\n";

        // Numeric rebalancing attempts must fail.
        MatvecKernel matvec;
        TrisolveKernel trisolve;
        const std::uint64_t n = mv.n_hint;
        TextTable attempts({"kernel", "alpha", "rebalance by memory?"});
        for (double alpha : {2.0, 4.0}) {
            auto mv_ratio = [&](std::uint64_t m) {
                return matvec.measure(n, m, false).cost.ratio();
            };
            auto ts_ratio = [&](std::uint64_t m) {
                return trisolve.measure(n, m, false).cost.ratio();
            };
            const auto rm =
                rebalanceNumeric(mv_ratio, 16, alpha, 1u << 17);
            const auto rt =
                rebalanceNumeric(ts_ratio, 16, alpha, 1u << 17);
            attempts.row()
                .cell("matvec")
                .cell(alpha, 3)
                .cell(rm.possible ? "yes (!)" : "impossible");
            attempts.row()
                .cell("trisolve")
                .cell(alpha, 3)
                .cell(rt.possible ? "yes (!)" : "impossible");
        }
        printHeading(std::cout,
                     "Rebalancing attempts (searching M up to 2^17)");
        attempts.print(std::cout);
        std::cout << "\npaper: \"there is no way to rebalance the PE "
                     "by merely enlarging its local memory\"\n";

        // --- one operator, two schedules: the stencil9/stencil9t
        // contrast. The SAME Moore stencil is I/O-bounded when every
        // sweep pays a block transfer (stencil9, flat like the rows
        // above) and rebalanceable when tau sweeps amortize each
        // transfer (stencil9t, R ~ sqrt(M)) — Section 3.6 membership
        // is a property of the schedule, not the operator.
        std::vector<SweepJob> stencil_jobs;
        for (const char *name : {"stencil9", "stencil9t"}) {
            SweepJob job;
            job.kernel = name;
            job.m_lo = 64;
            job.m_hi = 2048;
            job.points = ctx.points(7);
            stencil_jobs.push_back(job);
        }
        const auto stencils = ctx.engine().run(stencil_jobs);
        const auto &s9 = stencils[0], &s9t = stencils[1];
        TextTable stencil_table(
            {"M", "stencil9 R(M) (single-sweep)",
             "stencil9t R(M) (time-tiled)"});
        const std::size_t srows =
            std::min(s9.points.size(), s9t.points.size());
        for (std::size_t i = 0; i < srows; ++i) {
            stencil_table.row()
                .cell(s9.points[i].sample.m)
                .cell(s9.points[i].sample.ratio, 5)
                .cell(s9t.points[i].sample.ratio, 5);
        }
        printHeading(std::cout,
                     "Same 9-point stencil, two schedules: "
                     "I/O-bounded vs rebalanceable");
        stencil_table.print(std::cout);
        const auto s9_fit = fitPowerLaw(s9.memories(), s9.ratios());
        const auto s9t_fit = fitPowerLaw(s9t.memories(), s9t.ratios());
        std::cout << "\nlog-log slopes: stencil9 " << s9_fit.slope
                  << " (flat, Section 3.6), stencil9t "
                  << s9t_fit.slope
                  << " (paper's grid law: ~0.5, alpha^2)\n"
                  << "(N: stencil9 " << s9.n_hint << ", stencil9t "
                  << s9t.n_hint << ")\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = true,
                         .threads = true});
}
