/**
 * @file
 * E7 — Section 3.6: I/O-bounded computations.
 *
 * Matrix-vector multiplication and triangular solve read their data
 * once and reuse nothing, so R(M) is bounded by a constant (2): no
 * memory size rebalances a PE whose C/IO grew by alpha >= 2.
 */

#include <cmath>
#include <iostream>

#include "analysis/classify.hpp"
#include "analysis/experiments.hpp"
#include "core/rebalance.hpp"
#include "kernels/matvec.hpp"
#include "kernels/spmv.hpp"
#include "kernels/trisolve.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace kb;
    printExperimentBanner("E7");

    MatvecKernel matvec;
    TrisolveKernel trisolve;
    SpmvKernel spmv;
    const std::uint64_t n = 768;

    TextTable sweep({"M", "matvec R(M)", "trisolve R(M)",
                     "spmv R(M)"});
    std::vector<double> ms, mv_r, ts_r;
    for (std::uint64_t m = 8; m <= 32768; m *= 4) {
        const auto rm = matvec.measure(n, m, false);
        const auto rt = trisolve.measure(n, m, false);
        const auto rs = spmv.measure(4 * n, m, false);
        ms.push_back(static_cast<double>(m));
        mv_r.push_back(rm.cost.ratio());
        ts_r.push_back(rt.cost.ratio());
        sweep.row()
            .cell(m)
            .cell(rm.cost.ratio(), 5)
            .cell(rt.cost.ratio(), 5)
            .cell(rs.cost.ratio(), 5);
    }
    printHeading(std::cout,
                 "R(M) is flat: a 4096x memory increase buys almost "
                 "nothing (N = 768)");
    sweep.print(std::cout);

    const auto mv_fit = fitPowerLaw(ms, mv_r);
    const auto ts_fit = fitPowerLaw(ms, ts_r);
    std::cout << "\nlog-log slopes: matvec " << mv_fit.slope
              << ", trisolve " << ts_fit.slope
              << " (paper: 0 — no memory law exists)\n";

    const auto mv_law = classifyRatioCurve(ms, mv_r);
    const auto ts_law = classifyRatioCurve(ms, ts_r);
    std::cout << "classified: matvec -> " << mv_law.describe()
              << "\n            trisolve -> " << ts_law.describe()
              << "\n";

    // Numeric rebalancing attempts must fail.
    TextTable attempts({"kernel", "alpha", "rebalance by memory?"});
    for (double alpha : {2.0, 4.0}) {
        auto mv_ratio = [&](std::uint64_t m) {
            return matvec.measure(n, m, false).cost.ratio();
        };
        auto ts_ratio = [&](std::uint64_t m) {
            return trisolve.measure(n, m, false).cost.ratio();
        };
        const auto rm = rebalanceNumeric(mv_ratio, 16, alpha, 1u << 17);
        const auto rt = rebalanceNumeric(ts_ratio, 16, alpha, 1u << 17);
        attempts.row()
            .cell("matvec")
            .cell(alpha, 3)
            .cell(rm.possible ? "yes (!)" : "impossible");
        attempts.row()
            .cell("trisolve")
            .cell(alpha, 3)
            .cell(rt.possible ? "yes (!)" : "impossible");
    }
    printHeading(std::cout,
                 "Rebalancing attempts (searching M up to 2^17)");
    attempts.print(std::cout);
    std::cout << "\npaper: \"there is no way to rebalance the PE by "
                 "merely enlarging its local memory\"\n";
    return 0;
}
