/**
 * @file
 * E8 — Section 4.1 / Fig. 3: the one-dimensional processor array.
 *
 * Paper claim: with only boundary PEs talking to the host, alpha = p,
 * so each PE's local memory must grow linearly with the array length
 * to stay balanced. Shown two ways: the aggregate-PE algebra and the
 * time-stepped dataflow simulation (smallest per-PE memory reaching
 * 95% utilization).
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "parallel/aggregate.hpp"
#include "parallel/array_sim.hpp"
#include "parallel/workloads.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E8",
                           [](bench::BenchContext &) {

        // Algebra: per-PE memory from the aggregate view.
        PeConfig base{8.0, 1.0, 64}; // C/IO = 8; balanced matmul at b ~ 8
        TextTable algebra({"p", "alpha", "total memory", "per-PE memory",
                           "per-PE / p"});
        for (std::uint64_t p : {1u, 2u, 4u, 8u, 16u, 32u}) {
            const ArraySpec spec{Topology::Linear, p, base};
            const auto per_pe =
                requiredPerPeMemory(ScalingLaw::power(2.0), spec, 64);
            algebra.row()
                .cell(p)
                .cell(aggregateAlpha(spec), 3)
                .cell(*per_pe * static_cast<double>(p), 5)
                .cell(*per_pe, 5)
                .cell(*per_pe / static_cast<double>(p), 4);
        }
        printHeading(std::cout,
                     "Aggregate-PE algebra (law alpha^2, single-PE M = "
                     "64)");
        algebra.print(std::cout);
        std::cout << "\nper-PE / p constant -> each PE's memory grows "
                     "linearly with p (the paper's Fig. 3 conclusion)\n";

        // Simulation: matmul dataflow on the chain.
        TextTable sim({"p", "per-PE memory @95% util", "memory / p",
                       "tile edge B", "utilization @ that memory"});
        std::vector<double> ps, mems;
        for (std::uint64_t p : {2u, 4u, 8u, 16u, 32u}) {
            auto run = [&](std::uint64_t m_pe) {
                const auto wl =
                    matmulLinearWorkload(512, p, m_pe, 8.0, 1.0);
                return simulateArray(wl.machine, wl.steps);
            };
            const auto m_needed =
                minMemoryForUtilization(run, 0.95, 8, 1u << 22);
            const auto wl = matmulLinearWorkload(512, p, m_needed, 8.0, 1.0);
            const auto result = simulateArray(wl.machine, wl.steps);
            ps.push_back(static_cast<double>(p));
            mems.push_back(static_cast<double>(m_needed));
            sim.row()
                .cell(p)
                .cell(m_needed)
                .cell(static_cast<double>(m_needed) /
                          static_cast<double>(p),
                      4)
                .cell(wl.block_edge)
                .cell(result.utilization(), 4);
        }
        printHeading(std::cout,
                     "Time-stepped simulation (block matmul, N = 512, "
                     "per-PE C/IO = 8)");
        sim.print(std::cout);

        const auto fit = fitPowerLaw(ps, mems);
        std::cout << "\nlog-log slope of per-PE memory vs p: " << fit.slope
                  << " (paper: 1.0)   r2 = " << fit.r2 << "\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = false,
                         .threads = false});
}
