/**
 * @file
 * E2 — Section 3.1: matrix multiplication.
 *
 * Regenerates the paper's Eq. (2) shape: Ccomp/Cio = Theta(sqrt(M)),
 * by running the real tiled schedule across a memory sweep, and
 * checks the rebalancing consequence M_new = alpha^2 M_old.
 */

#include <cmath>
#include <iostream>

#include "analysis/experiments.hpp"
#include "core/rebalance.hpp"
#include "kernels/matmul.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace kb;
    printExperimentBanner("E2");

    MatmulKernel kernel;
    const std::uint64_t n = 384;

    TextTable sweep({"M (words)", "tile b", "Ccomp", "Cio (measured)",
                     "Cio (paper formula)", "R(M)", "R/sqrt(M)"});
    std::vector<double> ms, ratios;
    for (std::uint64_t m = 48; m <= 12288; m *= 2) {
        const auto r = kernel.measure(n, m, /*verify=*/false);
        const auto analytic = kernel.analyticCosts(n, m);
        const double ratio = r.cost.ratio();
        ms.push_back(static_cast<double>(m));
        ratios.push_back(ratio);
        sweep.row()
            .cell(m)
            .cell(MatmulKernel::tileSize(m))
            .cell(r.cost.comp_ops, 4)
            .cell(r.cost.io_words, 4)
            .cell(analytic.io_words, 4)
            .cell(ratio, 4)
            .cell(ratio / std::sqrt(static_cast<double>(m)), 3);
    }
    printHeading(std::cout, "R(M) sweep (N = 384, real arithmetic)");
    sweep.print(std::cout);

    // Machine-readable series for replotting.
    CsvWriter csv("e2_matmul_ratio.csv", {"m_words", "ratio"});
    for (std::size_t i = 0; i < ms.size(); ++i)
        csv.writeRow({std::to_string(ms[i]), std::to_string(ratios[i])});
    std::cout << "\n(series written to e2_matmul_ratio.csv)\n";

    const auto fit = fitPowerLaw(ms, ratios);
    std::cout << "\nlog-log slope of R(M): " << fit.slope
              << "   (paper: 0.5)   r2 = " << fit.r2 << "\n";

    TextTable rebal({"alpha", "paper M_new/M_old",
                     "measured M_new/M_old"});
    auto ratio_at = [&](std::uint64_t m) {
        return kernel.measure(n, m, false).cost.ratio();
    };
    const std::uint64_t m_old = 192;
    for (double alpha : {1.5, 2.0, 3.0}) {
        const auto paper =
            rebalanceClosedForm(kernel.law(), m_old, alpha);
        const auto measured =
            rebalanceNumeric(ratio_at, m_old, alpha, 1u << 16);
        rebal.row()
            .cell(alpha, 3)
            .cell(paper.growth_factor, 4)
            .cell(measured.possible ? measured.growth_factor : -1.0, 4);
    }
    printHeading(std::cout,
                 "Rebalancing factors (M_old = 192): alpha^2 law");
    rebal.print(std::cout);
    return 0;
}
