/**
 * @file
 * E2 — Section 3.1: matrix multiplication.
 *
 * Regenerates the paper's Eq. (2) shape: Ccomp/Cio = Theta(sqrt(M)),
 * by running the real tiled schedule across a memory sweep on the
 * experiment engine, and checks the rebalancing consequence
 * M_new = alpha^2 M_old.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/matmul.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E2", [](bench::BenchContext &ctx) {
        MatmulKernel kernel;

        SweepJob job;
        job.kernel = "matmul";
        job.m_lo = 48;
        job.m_hi = 12288;
        job.points = ctx.points(9);
        const auto result = ctx.engine().runOne(job);
        const std::uint64_t n = result.n_hint;

        TextTable sweep({"M (words)", "tile b", "Ccomp",
                         "Cio (measured)", "Cio (paper formula)",
                         "R(M)", "R/sqrt(M)"});
        std::vector<double> ms, ratios;
        for (const auto &p : result.points) {
            const auto &s = p.sample;
            const auto analytic = kernel.analyticCosts(n, s.m);
            ms.push_back(static_cast<double>(s.m));
            ratios.push_back(s.ratio);
            sweep.row()
                .cell(s.m)
                .cell(MatmulKernel::tileSize(s.m))
                .cell(s.comp_ops, 4)
                .cell(s.io_words, 4)
                .cell(analytic.io_words, 4)
                .cell(s.ratio, 4)
                .cell(s.ratio / std::sqrt(static_cast<double>(s.m)), 3);
        }
        printHeading(std::cout, "R(M) sweep (N = " + std::to_string(n) +
                                    ", real arithmetic)");
        sweep.print(std::cout);

        // Machine-readable series for replotting.
        if (auto csv =
                ctx.csv("e2_matmul_ratio.csv", {"m_words", "ratio"})) {
            for (std::size_t i = 0; i < ms.size(); ++i)
                csv->writeRow({std::to_string(ms[i]),
                               std::to_string(ratios[i])});
            std::cout << "\n" << ctx.csvNote("e2_matmul_ratio.csv")
                      << "\n";
        }

        const auto fit = fitPowerLaw(ms, ratios);
        std::cout << "\nlog-log slope of R(M): " << fit.slope
                  << "   (paper: 0.5)   r2 = " << fit.r2 << "\n";

        TextTable rebal({"alpha", "paper M_new/M_old",
                         "measured M_new/M_old"});
        auto ratio_at = [&](std::uint64_t m) {
            return kernel.measure(n, m, false).cost.ratio();
        };
        const std::uint64_t m_old = 192;
        for (double alpha : {1.5, 2.0, 3.0}) {
            const auto paper =
                rebalanceClosedForm(kernel.law(), m_old, alpha);
            const auto measured =
                rebalanceNumeric(ratio_at, m_old, alpha, 1u << 16);
            rebal.row()
                .cell(alpha, 3)
                .cell(paper.growth_factor, 4)
                .cell(measured.possible ? measured.growth_factor : -1.0,
                      4);
        }
        printHeading(std::cout,
                     "Rebalancing factors (M_old = 192): alpha^2 law");
        rebal.print(std::cout);
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = true,
                         .threads = true});
}
