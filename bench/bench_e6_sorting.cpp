/**
 * @file
 * E6 — Section 3.5: sorting by comparisons.
 *
 * Two-phase external merge sort: R(M) = Theta(log2 M) comparisons
 * per transferred word, measured in the paper's own setting
 * (N = M^2: N/M in-core runs, one M-way merge) on the engine, plus
 * the multi-pass regime N >> M^2.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/sort.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E6", [](bench::BenchContext &ctx) {
        SortKernel kernel;

        // Paper setting N = M^2 (SortKernel::measureRatioPoint).
        SweepJob job;
        job.kernel = "sorting";
        job.m_lo = 32;
        job.m_hi = 2048;
        job.points = ctx.points(7);
        const auto result = ctx.engine().runOne(job);

        TextTable sweep({"M", "N = M^2", "comparisons", "Cio", "R(M)",
                         "R/log2(M)"});
        std::vector<double> ms, ratios;
        for (const auto &p : result.points) {
            const auto &s = p.sample;
            ms.push_back(static_cast<double>(s.m));
            ratios.push_back(s.ratio);
            sweep.row()
                .cell(s.m)
                .cell(s.m * s.m)
                .cell(s.comp_ops, 4)
                .cell(s.io_words, 4)
                .cell(s.ratio, 4)
                .cell(s.ratio / std::log2(static_cast<double>(s.m)),
                      3);
        }
        printHeading(std::cout,
                     "R(M) in the paper's two-phase setting (N = M^2)");
        sweep.print(std::cout);

        const auto log_fit = fitLogLaw(ms, ratios);
        const auto pow_fit = fitPowerLaw(ms, ratios);
        std::cout << "\nR vs log2 M slope: " << log_fit.slope
                  << " (paper: 0.5; r2 = " << log_fit.r2
                  << "); power exponent would be " << pow_fit.slope
                  << "\n";

        // Multi-pass regime: fixed N, pass count staircase.
        TextTable passes({"M", "runs", "Cio", "R(M)", "note"});
        const std::uint64_t n = 1u << 18;
        for (std::uint64_t m = 16; m <= 16384; m *= 4) {
            const auto r = kernel.measure(n, m, false);
            const std::uint64_t runs = (n + m - 1) / m;
            passes.row()
                .cell(m)
                .cell(runs)
                .cell(r.cost.io_words, 4)
                .cell(r.cost.ratio(), 4)
                .cell(runs <= m - 1 ? "single merge pass"
                                    : "multi-pass");
        }
        printHeading(std::cout,
                     "Fixed N = 2^18: integer pass counts give the "
                     "staircase discussed in EXPERIMENTS.md");
        passes.print(std::cout);

        // The exponential law, as for the FFT.
        const auto paper =
            rebalanceClosedForm(ScalingLaw::exponential(), 1024, 2.0);
        std::cout << "\nalpha = 2 from M_old = 1024: paper M_new = "
                  << paper.m_new << " words (factor "
                  << paper.growth_factor
                  << ") — the Section 5 blow-up\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = true,
                         .threads = true});
}
