/**
 * @file
 * E1 — the paper's Section 3 summary table, regenerated.
 *
 * For every computation: measure R(M) on the simulated PE in the
 * kernel's paper regime (the whole grid runs as one engine batch),
 * classify the curve, and print the recovered rebalancing law next
 * to the paper's. Then show the memory growth a PE needs for
 * alpha = 2, 4, 8 under both the paper's closed form and numeric
 * rebalancing on the measured curve.
 */

#include <cmath>
#include <iostream>

#include "analysis/classify.hpp"
#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/kernel.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E1", [](bench::BenchContext &ctx) {
        // One declarative batch: every kernel's default sweep.
        const auto results = ctx.experimentSweeps();

        TextTable laws({"computation", "paper law", "measured shape",
                        "fit", "verdict"});
        std::vector<RatioCurve> curves;
        for (const auto &result : results) {
            const auto kernel = makeKernel(result.job.kernel);
            auto curve = toRatioCurve(result);
            const auto fitted =
                classifyRatioCurve(curve.memories(), curve.ratios());
            const bool ok = lawMatches(fitted, kernel->law(), 0.3);
            laws.row()
                .cell(kernel->name())
                .cell(kernel->law().describe())
                .cell(fitted.describe())
                .cell(ok)
                .cell(ok ? "matches paper" : "MISMATCH");
            curves.push_back(std::move(curve));
        }
        printHeading(std::cout, "Rebalancing laws (paper vs. measured)");
        laws.print(std::cout);

        // Memory growth factors M_new / M_old for alpha = 2, 4, 8.
        TextTable growth({"computation", "M_old", "alpha=2 (paper)",
                          "alpha=2 (measured)", "alpha=4 (paper)",
                          "alpha=4 (measured)", "alpha=8 (paper)"});
        for (const auto &cd : curves) {
            const auto kernel = makeKernel(cd.name);
            // Interpolate the measured curve for numeric rebalancing.
            const auto ms = cd.memories();
            const auto rs = cd.ratios();
            auto measured_ratio = [&](std::uint64_t m) {
                const double dm = static_cast<double>(m);
                if (dm <= ms.front())
                    return rs.front();
                for (std::size_t i = 1; i < ms.size(); ++i) {
                    if (dm <= ms[i]) {
                        const double t =
                            (std::log(dm) - std::log(ms[i - 1])) /
                            (std::log(ms[i]) - std::log(ms[i - 1]));
                        return rs[i - 1] + t * (rs[i] - rs[i - 1]);
                    }
                }
                return rs.back();
            };
            const std::uint64_t m_old =
                static_cast<std::uint64_t>(ms.front());
            const std::uint64_t m_max =
                static_cast<std::uint64_t>(ms.back());

            auto paper_cell = [&](double alpha) {
                const auto r =
                    rebalanceClosedForm(kernel->law(), m_old, alpha);
                return r.possible
                           ? std::to_string(r.growth_factor).substr(0, 7)
                           : std::string("impossible");
            };
            auto measured_cell = [&](double alpha) {
                const auto r = rebalanceNumeric(measured_ratio, m_old,
                                                alpha, m_max);
                return r.possible
                           ? std::to_string(r.growth_factor).substr(0, 7)
                           : std::string("not reachable");
            };

            growth.row()
                .cell(kernel->name())
                .cell(m_old)
                .cell(paper_cell(2.0))
                .cell(measured_cell(2.0))
                .cell(paper_cell(4.0))
                .cell(measured_cell(4.0))
                .cell(paper_cell(8.0));
        }
        printHeading(std::cout,
                     "Memory growth factor M_new/M_old after C/IO "
                     "grows by alpha");
        growth.print(std::cout);
        std::cout
            << "\n(measured column is bounded by the sweep ceiling; "
               "'not reachable' within the sweep\n confirms "
               "impossibility only for the I/O-bounded kernels)\n";
        return 0;
    });
}
