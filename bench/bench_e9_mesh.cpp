/**
 * @file
 * E9 — Section 4.2 / Fig. 4: the square processor array.
 *
 * Paper claims: (a) for matmul-class computations (law alpha^2) the
 * p x p mesh is automatically balanced — per-PE memory independent
 * of p; (b) for d > 2 grids the per-PE memory must still grow.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "parallel/aggregate.hpp"
#include "parallel/array_sim.hpp"
#include "parallel/workloads.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E9",
                           [](bench::BenchContext &) {

        PeConfig base{8.0, 1.0, 64};

        TextTable algebra({"p (per side)", "alpha", "PEs",
                           "per-PE (matmul, a^2)", "per-PE (grid3d, a^3)"});
        for (std::uint64_t p : {1u, 2u, 4u, 8u, 16u}) {
            const ArraySpec spec{Topology::Mesh2D, p, base};
            const auto mm =
                requiredPerPeMemory(ScalingLaw::power(2.0), spec, 64);
            const auto g3 =
                requiredPerPeMemory(ScalingLaw::power(3.0), spec, 64);
            algebra.row()
                .cell(p)
                .cell(aggregateAlpha(spec), 3)
                .cell(spec.peCount())
                .cell(*mm, 4)
                .cell(*g3, 4);
        }
        printHeading(std::cout, "Aggregate-PE algebra (single-PE M = 64)");
        algebra.print(std::cout);
        std::cout
            << "\nmatmul column constant (automatic balance, Fig. 4); "
               "grid3d column grows ~p (the paper's exception)\n";

        // Simulation part (a): mesh matmul.
        TextTable mm_sim({"p", "per-PE memory @95% util", "utilization"});
        std::vector<double> ps, mems;
        for (std::uint64_t p : {2u, 4u, 8u, 16u}) {
            auto run = [&](std::uint64_t m_pe) {
                const auto wl = matmulMeshWorkload(512, p, m_pe, 8.0, 1.0);
                return simulateArray(wl.machine, wl.steps);
            };
            const auto m_needed =
                minMemoryForUtilization(run, 0.95, 8, 1u << 22);
            const auto wl = matmulMeshWorkload(512, p, m_needed, 8.0, 1.0);
            ps.push_back(static_cast<double>(p));
            mems.push_back(static_cast<double>(m_needed));
            mm_sim.row()
                .cell(p)
                .cell(m_needed)
                .cell(simulateArray(wl.machine, wl.steps).utilization(),
                      4);
        }
        printHeading(std::cout,
                     "Simulation: block matmul on the p x p mesh");
        mm_sim.print(std::cout);
        const auto mm_fit = fitPowerLaw(ps, mems);
        std::cout << "\nslope of per-PE memory vs p: " << mm_fit.slope
                  << " (paper: 0 — independent of p)\n";

        // Simulation part (b): 3-D grid on the mesh.
        TextTable g3_sim({"p", "per-PE memory @95% util", "memory / p"});
        std::vector<double> ps3, mems3;
        for (std::uint64_t p : {2u, 4u, 8u}) {
            auto run = [&](std::uint64_t m_pe) {
                const auto wl =
                    grid3dMeshWorkload(1024, 64, p, m_pe, 24.0, 1.0);
                return simulateArray(wl.machine, wl.steps);
            };
            const auto m_needed =
                minMemoryForUtilization(run, 0.95, 32, 1u << 24);
            ps3.push_back(static_cast<double>(p));
            mems3.push_back(static_cast<double>(m_needed));
            g3_sim.row()
                .cell(p)
                .cell(m_needed)
                .cell(static_cast<double>(m_needed) /
                          static_cast<double>(p),
                      4);
        }
        printHeading(std::cout,
                     "Simulation: 3-D grid relaxation on the p x p mesh");
        g3_sim.print(std::cout);
        const auto g3_fit = fitPowerLaw(ps3, mems3);
        std::cout << "\nslope of per-PE memory vs p: " << g3_fit.slope
                  << " (paper: grows — an automatically balanced square "
                     "array is never possible for d > 2)\n";
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = false,
                         .threads = false});
}
