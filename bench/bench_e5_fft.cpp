/**
 * @file
 * E5 — Section 3.4 and Fig. 2: the FFT.
 *
 * Part 1 regenerates Fig. 2's block decomposition for N = 16, M = 4:
 * the transform splits into two ranks of four 4-point in-core blocks
 * with shuffles between them.
 *
 * Part 2 measures R(M) = Theta(log2 M) in the paper regime (N = P^2)
 * on the engine, and the exponential rebalancing law
 * M_new = M_old^alpha, including the Section 5 warning that the
 * growth factor blows up with M_old.
 */

#include <cmath>
#include <iostream>

#include "bench/driver.hpp"
#include "core/rebalance.hpp"
#include "kernels/fft.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace kb;
    return bench::runBench(argc, argv, "E5", [](bench::BenchContext &ctx) {
        FftKernel kernel;

        // Part 1: Fig. 2.
        const auto fig2 = kernel.decompose(16, 4);
        printHeading(std::cout,
                     "Fig. 2 — decomposing the 16-point FFT with M = 4");
        std::cout << "in-core blocks:       " << fig2.blocks
                  << "  (paper: 8 = two ranks of N/M = 4 blocks)\n"
                  << "block size:           " << fig2.max_block
                  << "  (paper: M = 4 points)\n"
                  << "shuffle passes:       " << fig2.shuffles
                  << "  (external transposes between ranks)\n"
                  << "recursion depth:      " << fig2.levels << "\n";

        TextTable deeper({"N", "M", "blocks", "max block", "shuffles",
                          "levels"});
        for (std::uint64_t n : {64u, 1024u, 16384u}) {
            for (std::uint64_t m : {4u, 16u, 64u}) {
                const auto d = kernel.decompose(n, m);
                deeper.row()
                    .cell(n)
                    .cell(m)
                    .cell(d.blocks)
                    .cell(d.max_block)
                    .cell(d.shuffles)
                    .cell(d.levels);
            }
        }
        printHeading(std::cout, "Decomposition structure vs (N, M)");
        deeper.print(std::cout);

        // Part 2: R(M) ~ log2 M in the N = P^2 regime (engine sweep;
        // FftKernel::measureRatioPoint encodes the regime).
        SweepJob job;
        job.kernel = "fft";
        job.m_lo = 8;
        job.m_hi = 2048;
        job.points = ctx.points(9);
        const auto result = ctx.engine().runOne(job);

        TextTable sweep({"M", "P", "N = P^2", "Ccomp", "Cio", "R(M)",
                         "R/log2(M)"});
        std::vector<double> ms, ratios;
        for (const auto &p : result.points) {
            const auto &s = p.sample;
            const std::uint64_t pts = FftKernel::inCorePoints(s.m);
            ms.push_back(static_cast<double>(s.m));
            ratios.push_back(s.ratio);
            sweep.row()
                .cell(s.m)
                .cell(pts)
                .cell(pts * pts)
                .cell(s.comp_ops, 4)
                .cell(s.io_words, 4)
                .cell(s.ratio, 4)
                .cell(s.ratio / std::log2(static_cast<double>(s.m)),
                      3);
        }
        printHeading(std::cout, "R(M) sweep in the paper regime");
        sweep.print(std::cout);

        const auto log_fit = fitLogLaw(ms, ratios);
        const auto pow_fit = fitPowerLaw(ms, ratios);
        std::cout << "\nR vs log2 M slope: " << log_fit.slope
                  << " (r2 = " << log_fit.r2
                  << "); power-law exponent would be " << pow_fit.slope
                  << " — logarithmic, as the paper claims\n";

        // Exponential law: growth factor depends on M_old.
        TextTable blowup({"M_old", "alpha", "paper M_new",
                          "paper growth", "measured growth"});
        auto ratio_at = [&](std::uint64_t m) {
            const std::uint64_t p = FftKernel::inCorePoints(m);
            return kernel.measure(p * p, m, false).cost.ratio();
        };
        for (std::uint64_t m_old : {16u, 32u, 64u}) {
            const double alpha = 1.5;
            const auto paper = rebalanceClosedForm(
                ScalingLaw::exponential(), m_old, alpha);
            const auto measured =
                rebalanceNumeric(ratio_at, m_old, alpha, 4096);
            blowup.row()
                .cell(m_old)
                .cell(alpha, 3)
                .cell(paper.m_new)
                .cell(paper.growth_factor, 4)
                .cell(measured.possible ? measured.growth_factor
                                        : -1.0,
                      4);
        }
        printHeading(
            std::cout,
            "Exponential law M_new = M_old^alpha: the growth "
            "factor itself grows with M_old (Section 5 warning)");
        blowup.print(std::cout);
        return 0;
    },
        bench::BenchCaps{.kernels = false, .points = true,
                         .threads = true});
}
